package wiscan

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

const sample = `# wi-scan v1
# location: kitchen
1118161600123	00:02:2d:0a:0b:0c	house	6	-61	-96
1118161600123	00:02:2d:0a:0b:0d	house	11	-74	-95

1118161601130	00:02:2d:0a:0b:0c	house	6	-62	-96
`

func TestReadBasic(t *testing.T) {
	f, err := Read(strings.NewReader(sample), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	if f.Location != "kitchen" {
		t.Errorf("Location = %q, want kitchen (header override)", f.Location)
	}
	if len(f.Records) != 3 {
		t.Fatalf("got %d records", len(f.Records))
	}
	r := f.Records[0]
	if r.TimeMillis != 1118161600123 || r.BSSID != "00:02:2d:0a:0b:0c" ||
		r.SSID != "house" || r.Channel != 6 || r.RSSI != -61 || r.Noise != -96 {
		t.Errorf("record 0 = %+v", r)
	}
}

func TestReadFallbackLocation(t *testing.T) {
	in := "1\taa:bb\tnet\t1\t-50\t-90\n"
	f, err := Read(strings.NewReader(in), "hallway")
	if err != nil {
		t.Fatal(err)
	}
	if f.Location != "hallway" {
		t.Errorf("Location = %q", f.Location)
	}
}

func TestReadSpaceSeparatedAndCRLF(t *testing.T) {
	in := "100 aa:bb net 6 -55 -92\r\n200 aa:bb net 6 -56\r\n"
	f, err := Read(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Records) != 2 {
		t.Fatalf("got %d records", len(f.Records))
	}
	if f.Records[1].Noise != 0 {
		t.Errorf("missing noise column should be 0, got %d", f.Records[1].Noise)
	}
}

func TestReadTabSSIDWithSpaces(t *testing.T) {
	in := "100\taa:bb\tcoffee shop wifi\t6\t-55\t-92\n"
	f, err := Read(strings.NewReader(in), "x")
	if err != nil {
		t.Fatal(err)
	}
	if f.Records[0].SSID != "coffee shop wifi" {
		t.Errorf("SSID = %q", f.Records[0].SSID)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"too few fields", "100\taa:bb\tnet\t6\n"},
		{"bad timestamp", "abc\taa:bb\tnet\t6\t-55\n"},
		{"negative timestamp", "-5\taa:bb\tnet\t6\t-55\n"},
		{"empty bssid", "100\t\tnet\t6\t-55\n"},
		{"bad channel", "100\taa:bb\tnet\tx\t-55\n"},
		{"bad rssi", "100\taa:bb\tnet\t6\tstrong\n"},
		{"positive rssi", "100\taa:bb\tnet\t6\t20\n"},
		{"rssi too low", "100\taa:bb\tnet\t6\t-150\n"},
		{"bad noise", "100\taa:bb\tnet\t6\t-55\tloud\n"},
	}
	for _, c := range cases {
		_, err := Read(strings.NewReader(c.in), "x")
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		var pe *ParseError
		if !errors.As(err, &pe) {
			t.Errorf("%s: error %v is not a ParseError", c.name, err)
		} else if pe.Line != 1 {
			t.Errorf("%s: line = %d", c.name, pe.Line)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	if _, err := Read(strings.NewReader("# only comments\n"), "x"); err != ErrNoRecords {
		t.Errorf("err = %v, want ErrNoRecords", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	orig, err := Read(strings.NewReader(sample), "fallback")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf, "other")
	if err != nil {
		t.Fatal(err)
	}
	if back.Location != orig.Location {
		t.Errorf("Location = %q", back.Location)
	}
	if len(back.Records) != len(orig.Records) {
		t.Fatalf("record count %d != %d", len(back.Records), len(orig.Records))
	}
	for i := range orig.Records {
		if back.Records[i] != orig.Records[i] {
			t.Errorf("record %d: %+v != %+v", i, back.Records[i], orig.Records[i])
		}
	}
}

func TestScans(t *testing.T) {
	f, _ := Read(strings.NewReader(sample), "x")
	scans := f.Scans()
	if len(scans) != 2 {
		t.Fatalf("got %d scans, want 2", len(scans))
	}
	if len(scans[0]) != 2 || len(scans[1]) != 1 {
		t.Errorf("scan sizes %d, %d", len(scans[0]), len(scans[1]))
	}
	// Time ordering even when input is shuffled.
	shuffled := "300\ta\tn\t1\t-50\t0\n100\tb\tn\t1\t-51\t0\n200\tc\tn\t1\t-52\t0\n"
	f2, _ := Read(strings.NewReader(shuffled), "x")
	scans = f2.Scans()
	if scans[0][0].BSSID != "b" || scans[1][0].BSSID != "c" || scans[2][0].BSSID != "a" {
		t.Error("scans not time-ordered")
	}
}

func TestBSSIDsAndRSSIsFor(t *testing.T) {
	f, _ := Read(strings.NewReader(sample), "x")
	ids := f.BSSIDs()
	if len(ids) != 2 || ids[0] != "00:02:2d:0a:0b:0c" || ids[1] != "00:02:2d:0a:0b:0d" {
		t.Errorf("BSSIDs = %v", ids)
	}
	rs := f.RSSIsFor("00:02:2d:0a:0b:0c")
	if len(rs) != 2 || rs[0] != -61 || rs[1] != -62 {
		t.Errorf("RSSIsFor = %v", rs)
	}
	if got := f.RSSIsFor("nope"); got != nil {
		t.Errorf("unknown BSSID = %v", got)
	}
}

func TestDuration(t *testing.T) {
	f, _ := Read(strings.NewReader(sample), "x")
	if got := f.Duration(); got != 1007 {
		t.Errorf("Duration = %d, want 1007", got)
	}
	empty := &File{}
	if empty.Duration() != 0 {
		t.Error("empty duration not 0")
	}
}
