// Package wiscan reads and writes wi-scan files, the raw-capture
// format the Training Database Generator consumes.
//
// A wi-scan file records the output of a wireless scanning tool at one
// named training location: a sequence of observations, each one AP's
// signal strength at one moment. The paper's toolkit receives these
// files either as a directory or as a zip archive, one file per
// location, with the location's name taken from the file name.
//
// # File format
//
// wi-scan files are line-oriented UTF-8 text:
//
//	# wi-scan v1
//	# location: kitchen
//	1118161600123	00:02:2d:0a:0b:0c	house	6	-61	-96
//	1118161600123	00:02:2d:0a:0b:0d	house	11	-74	-95
//	1118161601130	00:02:2d:0a:0b:0c	house	6	-62	-96
//
// Columns are tab-separated: timestamp in Unix milliseconds, BSSID,
// SSID, channel, RSSI in dBm, and (optionally) noise in dBm. Lines
// beginning with '#' and blank lines are ignored; a "# location:"
// header, when present, overrides the file-name-derived location name.
// Records sharing a timestamp belong to the same scan sweep. The
// reader also accepts space-separated columns and CRLF line endings,
// since capture tools disagree about both.
package wiscan

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Record is one AP observation.
type Record struct {
	// TimeMillis is the capture time in Unix milliseconds. Records with
	// equal timestamps belong to one scan sweep.
	TimeMillis int64
	BSSID      string
	SSID       string
	Channel    int
	// RSSI is the received level in whole dBm (negative).
	RSSI int
	// Noise is the noise floor in dBm; 0 means not reported.
	Noise int
}

// File is a parsed wi-scan file.
type File struct {
	// Location is the training-location name, from the "# location:"
	// header or the file name.
	Location string
	Records  []Record
}

// ErrNoRecords is returned when a wi-scan file contains no data lines.
var ErrNoRecords = errors.New("wiscan: no records")

// ParseError describes a malformed line.
type ParseError struct {
	Line int
	Text string
	Err  error
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("wiscan: line %d %q: %v", e.Line, e.Text, e.Err)
}

func (e *ParseError) Unwrap() error { return e.Err }

// Read parses a wi-scan stream. location seeds File.Location and is
// typically the file's base name; a "# location:" header overrides it.
func Read(r io.Reader, location string) (*File, error) {
	f := &File{Location: location}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		if strings.HasPrefix(trimmed, "#") {
			if loc, ok := headerValue(trimmed, "location"); ok {
				f.Location = loc
			}
			continue
		}
		rec, err := parseLine(trimmed)
		if err != nil {
			return nil, &ParseError{Line: lineNo, Text: trimmed, Err: err}
		}
		f.Records = append(f.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("wiscan: read: %w", err)
	}
	if len(f.Records) == 0 {
		return nil, ErrNoRecords
	}
	return f, nil
}

// headerValue extracts the value of a "# key: value" comment header.
func headerValue(line, key string) (string, bool) {
	body := strings.TrimSpace(strings.TrimPrefix(line, "#"))
	prefix := key + ":"
	if !strings.HasPrefix(strings.ToLower(body), prefix) {
		return "", false
	}
	return strings.TrimSpace(body[len(prefix):]), true
}

// parseLine parses one data line. Tabs are the canonical separator;
// runs of spaces are tolerated. SSIDs containing separators survive
// only in tab-separated files (fields are positional).
func parseLine(line string) (Record, error) {
	var fields []string
	if strings.Contains(line, "\t") {
		fields = strings.Split(line, "\t")
	} else {
		fields = strings.Fields(line)
	}
	if len(fields) < 5 {
		return Record{}, fmt.Errorf("want ≥5 fields (time bssid ssid channel rssi [noise]), got %d", len(fields))
	}
	t, err := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("timestamp: %v", err)
	}
	if t < 0 {
		return Record{}, fmt.Errorf("timestamp %d negative", t)
	}
	bssid := strings.TrimSpace(fields[1])
	if bssid == "" {
		return Record{}, errors.New("empty BSSID")
	}
	ssid := strings.TrimSpace(fields[2])
	ch, err := strconv.Atoi(strings.TrimSpace(fields[3]))
	if err != nil {
		return Record{}, fmt.Errorf("channel: %v", err)
	}
	rssi, err := strconv.Atoi(strings.TrimSpace(fields[4]))
	if err != nil {
		return Record{}, fmt.Errorf("rssi: %v", err)
	}
	if rssi > 0 || rssi < -120 {
		return Record{}, fmt.Errorf("rssi %d outside [-120, 0]", rssi)
	}
	noise := 0
	if len(fields) >= 6 && strings.TrimSpace(fields[5]) != "" {
		noise, err = strconv.Atoi(strings.TrimSpace(fields[5]))
		if err != nil {
			return Record{}, fmt.Errorf("noise: %v", err)
		}
	}
	return Record{
		TimeMillis: t,
		BSSID:      bssid,
		SSID:       ssid,
		Channel:    ch,
		RSSI:       rssi,
		Noise:      noise,
	}, nil
}

// Write renders the file in canonical tab-separated form, including
// the version and location headers.
func Write(w io.Writer, f *File) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# wi-scan v1")
	if f.Location != "" {
		fmt.Fprintf(bw, "# location: %s\n", f.Location)
	}
	for _, r := range f.Records {
		fmt.Fprintf(bw, "%d\t%s\t%s\t%d\t%d\t%d\n",
			r.TimeMillis, r.BSSID, r.SSID, r.Channel, r.RSSI, r.Noise)
	}
	return bw.Flush()
}

// Scans groups the file's records into sweeps by timestamp, ordered by
// time. Records within a sweep keep file order.
func (f *File) Scans() [][]Record {
	byTime := make(map[int64][]Record)
	var times []int64
	for _, r := range f.Records {
		if _, ok := byTime[r.TimeMillis]; !ok {
			times = append(times, r.TimeMillis)
		}
		byTime[r.TimeMillis] = append(byTime[r.TimeMillis], r)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	out := make([][]Record, len(times))
	for i, t := range times {
		out[i] = byTime[t]
	}
	return out
}

// BSSIDs returns the distinct BSSIDs in the file, sorted.
func (f *File) BSSIDs() []string {
	set := make(map[string]bool)
	for _, r := range f.Records {
		set[r.BSSID] = true
	}
	out := make([]string, 0, len(set))
	for b := range set {
		out = append(out, b)
	}
	sort.Strings(out)
	return out
}

// RSSIsFor returns the RSSI series for one BSSID, in record order.
func (f *File) RSSIsFor(bssid string) []float64 {
	var out []float64
	for _, r := range f.Records {
		if r.BSSID == bssid {
			out = append(out, float64(r.RSSI))
		}
	}
	return out
}

// Duration returns the capture span in milliseconds (last timestamp
// minus first), or 0 with fewer than two distinct timestamps.
func (f *File) Duration() int64 {
	if len(f.Records) == 0 {
		return 0
	}
	min, max := f.Records[0].TimeMillis, f.Records[0].TimeMillis
	for _, r := range f.Records[1:] {
		if r.TimeMillis < min {
			min = r.TimeMillis
		}
		if r.TimeMillis > max {
			max = r.TimeMillis
		}
	}
	return max - min
}
