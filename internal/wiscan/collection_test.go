package wiscan

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleCollection() *Collection {
	mk := func(loc string, rssis ...int) *File {
		f := &File{Location: loc}
		for i, r := range rssis {
			f.Records = append(f.Records, Record{
				TimeMillis: int64(1000 * (i + 1)),
				BSSID:      "00:02:2d:00:00:0a",
				SSID:       "house",
				Channel:    6,
				RSSI:       r,
				Noise:      -95,
			})
		}
		return f
	}
	return &Collection{Files: map[string]*File{
		"kitchen": mk("kitchen", -61, -62, -60),
		"hall":    mk("hall", -70, -71),
		"porch":   mk("porch", -80),
	}}
}

func TestCollectionDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	orig := sampleCollection()
	if err := orig.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCollection(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Locations(); len(got) != 3 || got[0] != "hall" || got[1] != "kitchen" || got[2] != "porch" {
		t.Errorf("Locations = %v", got)
	}
	if back.TotalRecords() != orig.TotalRecords() {
		t.Errorf("TotalRecords = %d, want %d", back.TotalRecords(), orig.TotalRecords())
	}
	for name, f := range orig.Files {
		bf := back.Files[name]
		if bf == nil {
			t.Fatalf("missing location %s", name)
		}
		for i := range f.Records {
			if bf.Records[i] != f.Records[i] {
				t.Errorf("%s record %d mismatch", name, i)
			}
		}
	}
}

func TestCollectionZipRoundTrip(t *testing.T) {
	dir := t.TempDir()
	zipPath := filepath.Join(dir, "scans.zip")
	orig := sampleCollection()
	if err := orig.WriteZip(zipPath); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCollection(zipPath)
	if err != nil {
		t.Fatal(err)
	}
	if back.TotalRecords() != orig.TotalRecords() {
		t.Errorf("TotalRecords = %d, want %d", back.TotalRecords(), orig.TotalRecords())
	}
	if _, ok := back.Files["kitchen"]; !ok {
		t.Error("kitchen missing from zip round trip")
	}
}

func TestCollectionNestedDirs(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "floor1", "west")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "100\taa:bb\tnet\t6\t-61\t-95\n"
	if err := os.WriteFile(filepath.Join(dir, "lobby.wiscan"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "office.txt"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	// Non-scan files are skipped.
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	c, err := ReadCollection(dir)
	if err != nil {
		t.Fatal(err)
	}
	locs := c.Locations()
	if len(locs) != 2 || locs[0] != "lobby" || locs[1] != "office" {
		t.Errorf("Locations = %v", locs)
	}
}

func TestCollectionDuplicateLocation(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "sub")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	content := "100\taa:bb\tnet\t6\t-61\t-95\n"
	os.WriteFile(filepath.Join(dir, "lobby.wiscan"), []byte(content), 0o644)
	os.WriteFile(filepath.Join(sub, "lobby.wiscan"), []byte(content), 0o644)
	if _, err := ReadCollection(dir); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate locations: err = %v", err)
	}
}

func TestCollectionErrors(t *testing.T) {
	if _, err := ReadCollection(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("missing path accepted")
	}
	// Empty dir.
	if _, err := ReadCollection(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	// Not a dir or zip.
	plain := filepath.Join(t.TempDir(), "file.dat")
	os.WriteFile(plain, []byte("x"), 0o644)
	if _, err := ReadCollection(plain); err == nil {
		t.Error("plain file accepted")
	}
	// Malformed file inside dir.
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "bad.wiscan"), []byte("not a record\n"), 0o644)
	if _, err := ReadCollection(dir); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestHeaderOverridesFileName(t *testing.T) {
	dir := t.TempDir()
	content := "# location: master bedroom\n100\taa:bb\tnet\t6\t-61\t-95\n"
	os.WriteFile(filepath.Join(dir, "scan007.wiscan"), []byte(content), 0o644)
	c, err := ReadCollection(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Files["master bedroom"]; !ok {
		t.Errorf("Locations = %v, want header name", c.Locations())
	}
}
