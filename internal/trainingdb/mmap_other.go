//go:build !unix

package trainingdb

import "os"

// mapFile reports no mapping support; OpenCompiledFile falls back to
// reading the artifact into memory.
func mapFile(f *os.File, size int) (data []byte, closer func() error, ok bool) {
	return nil, nil, false
}
