package trainingdb

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"math/rand"
	"path/filepath"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

func crcOf(b []byte) uint32 { return crc32.ChecksumIEEE(b) }

// randomCompiled builds a compiled view from a randomized DB with
// sparse coverage, optionally quantized and optionally stripped of the
// float64 matrices.
func randomCompiled(t *testing.T, seed int64, nE, nAP int, quantize, release bool) *Compiled {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	db := &DB{Entries: make(map[string]*Entry)}
	universe := map[string]bool{}
	for i := 0; i < nE; i++ {
		name := fmt.Sprintf("loc-%03d", i)
		e := &Entry{Name: name, Pos: geom.Pt(rng.Float64()*100, rng.Float64()*80),
			PerAP: make(map[string]*APStats)}
		for j := 0; j < nAP; j++ {
			if rng.Float64() < 0.4 {
				continue
			}
			b := fmt.Sprintf("ap:%02d", j)
			var run stats.Running
			n := 2 + rng.Intn(9)
			for s := 0; s < n; s++ {
				run.Add(-40 - rng.Float64()*50)
			}
			e.PerAP[b] = &APStats{BSSID: b, N: n, Mean: run.Mean(), StdDev: run.StdDev()}
			universe[b] = true
		}
		db.Entries[name] = e
	}
	for b := range universe {
		db.BSSIDs = append(db.BSSIDs, b)
	}
	c := db.Compile(-95, 4)
	if quantize {
		c.Quantize()
	}
	if release {
		c.ReleaseFloat64()
	}
	return c
}

func sameF64(t *testing.T, what string, a, b []float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: len %d != %d", what, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s[%d]: %v != %v", what, i, a[i], b[i])
		}
	}
}

func checkRoundTrip(t *testing.T, c, d *Compiled) {
	t.Helper()
	if d.Generation != c.Generation || d.FloorRSSI != c.FloorRSSI || d.FloorSigma != c.FloorSigma {
		t.Fatalf("header fields: got (%d %v %v) want (%d %v %v)",
			d.Generation, d.FloorRSSI, d.FloorSigma, c.Generation, c.FloorRSSI, c.FloorSigma)
	}
	if len(d.Names) != len(c.Names) || len(d.BSSIDs) != len(c.BSSIDs) {
		t.Fatalf("dims: %d×%d want %d×%d", len(d.Names), len(d.BSSIDs), len(c.Names), len(c.BSSIDs))
	}
	for i := range c.Names {
		if d.Names[i] != c.Names[i] || d.Pos[i] != c.Pos[i] {
			t.Fatalf("entry %d: (%q %v) want (%q %v)", i, d.Names[i], d.Pos[i], c.Names[i], c.Pos[i])
		}
	}
	for j, b := range c.BSSIDs {
		if d.BSSIDs[j] != b {
			t.Fatalf("bssid %d: %q want %q", j, d.BSSIDs[j], b)
		}
		if got, ok := d.APIndex(b); !ok || got != j {
			t.Fatalf("APIndex(%q) = %d %v", b, got, ok)
		}
	}
	for i := range c.Trained {
		if d.Trained[i] != c.Trained[i] || d.N[i] != c.N[i] {
			t.Fatalf("cell %d: trained/N mismatch", i)
		}
	}
	sameF64(t, "UnheardLL", d.UnheardLL, c.UnheardLL)
	sameF64(t, "SignalBase", d.SignalBase, c.SignalBase)
	if (c.Mean == nil) != (d.Mean == nil) {
		t.Fatalf("float64 presence: got %v want %v", d.Mean != nil, c.Mean != nil)
	}
	if c.Mean != nil {
		sameF64(t, "Mean", d.Mean, c.Mean)
		sameF64(t, "Sigma", d.Sigma, c.Sigma)
		sameF64(t, "LogNorm", d.LogNorm, c.LogNorm)
		sameF64(t, "FloorLL", d.FloorLL, c.FloorLL)
	}
	if (c.Quant == nil) != (d.Quant == nil) {
		t.Fatalf("quant presence: got %v want %v", d.Quant != nil, c.Quant != nil)
	}
	if q := c.Quant; q != nil {
		dq := d.Quant
		if !bytes.Equal(byteView(dq.MeanQ), byteView(q.MeanQ)) ||
			!bytes.Equal(byteView(dq.SigmaQ), byteView(q.SigmaQ)) ||
			!bytes.Equal(byteView(dq.LogNormQ), byteView(q.LogNormQ)) ||
			!bytes.Equal(byteView(dq.FloorLLQ), byteView(q.FloorLLQ)) {
			t.Fatal("quant codes mismatch")
		}
		sameF64(t, "MeanScale", dq.MeanScale, q.MeanScale)
		sameF64(t, "MeanOff", dq.MeanOff, q.MeanOff)
		sameF64(t, "SigmaScale", dq.SigmaScale, q.SigmaScale)
		sameF64(t, "SigmaOff", dq.SigmaOff, q.SigmaOff)
		sameF64(t, "LogNormScale", dq.LogNormScale, q.LogNormScale)
		sameF64(t, "LogNormOff", dq.LogNormOff, q.LogNormOff)
		sameF64(t, "FloorLLScale", dq.FloorLLScale, q.FloorLLScale)
		sameF64(t, "FloorLLOff", dq.FloorLLOff, q.FloorLLOff)
		sameF64(t, "q.UnheardLL", dq.UnheardLL, q.UnheardLL)
		sameF64(t, "q.SignalBase", dq.SignalBase, q.SignalBase)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	cases := []struct {
		name              string
		quantize, release bool
	}{
		{"float64-only", false, false},
		{"both", true, false},
		{"quant-only", true, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := randomCompiled(t, 11, 23, 7, tc.quantize, tc.release)
			c.Generation = 42
			buf, err := EncodeCompiled(c)
			if err != nil {
				t.Fatal(err)
			}
			d, err := DecodeCompiled(buf, DecodeOptions{VerifyCRC: true})
			if err != nil {
				t.Fatal(err)
			}
			checkRoundTrip(t, c, d)
		})
	}
}

func TestCodecEmptyishDims(t *testing.T) {
	// One entry hearing nothing: zero-width matrices must survive.
	db := &DB{
		Entries: map[string]*Entry{"lone": {Name: "lone", Pos: geom.Pt(1, 2),
			PerAP: map[string]*APStats{}}},
	}
	c := db.Compile(-95, 4)
	buf, err := EncodeCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeCompiled(buf, DecodeOptions{VerifyCRC: true})
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, c, d)
}

func TestEncodeRejectsMatrixlessView(t *testing.T) {
	c := randomCompiled(t, 3, 4, 3, false, false)
	c.Mean, c.Sigma, c.LogNorm, c.FloorLL = nil, nil, nil, nil
	if _, err := EncodeCompiled(c); err == nil {
		t.Fatal("encoded a view with no matrices")
	}
}

func TestOpenCompiledFile(t *testing.T) {
	c := randomCompiled(t, 5, 40, 9, true, true)
	path := filepath.Join(t.TempDir(), "map.ilr")
	if err := WriteCompiledFile(path, c); err != nil {
		t.Fatal(err)
	}
	d, closeMap, err := OpenCompiledFile(path)
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, c, d)
	if err := closeMap(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenCompiledFile(filepath.Join(t.TempDir(), "missing.ilr")); err == nil {
		t.Fatal("opened a missing artifact")
	}
}

func TestReadFileInfo(t *testing.T) {
	c := randomCompiled(t, 6, 12, 5, true, false)
	c.Generation = 7
	buf, err := EncodeCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	info, err := ReadFileInfo(buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.NumEntries != 12 || info.NumAPs != len(c.BSSIDs) || info.Generation != 7 {
		t.Fatalf("info = %+v", info)
	}
	if !info.Quantized || !info.HasFloat64 {
		t.Fatalf("matrix presence: %+v", info)
	}
	if len(info.Sections) != 7+4+7 {
		t.Fatalf("%d sections", len(info.Sections))
	}
	for i := 1; i < len(info.Sections); i++ {
		prev, cur := info.Sections[i-1], info.Sections[i]
		if cur.Offset < prev.Offset+prev.Length {
			t.Fatalf("sections overlap: %+v then %+v", prev, cur)
		}
	}
}

// TestDecodeRejectsCorruption drives the validation paths the fuzz
// target explores: every mutation class must produce an error, never a
// panic.
func TestDecodeRejectsCorruption(t *testing.T) {
	c := randomCompiled(t, 8, 10, 6, true, false)
	buf, err := EncodeCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	opts := DecodeOptions{VerifyCRC: true}

	mutate := func(name string, f func(b []byte) []byte) {
		b := append([]byte(nil), buf...)
		b = f(b)
		if _, err := DecodeCompiled(b, opts); err == nil {
			t.Errorf("%s: decode accepted corrupt artifact", name)
		}
	}
	mutate("empty", func(b []byte) []byte { return nil })
	mutate("truncated-header", func(b []byte) []byte { return b[:20] })
	mutate("truncated-table", func(b []byte) []byte { return b[:mapHeaderSize+3] })
	mutate("bad-magic", func(b []byte) []byte { b[0] ^= 0xff; return b })
	mutate("bad-header-crc", func(b []byte) []byte { b[16] ^= 0xff; return b })
	mutate("truncated-payload", func(b []byte) []byte { return b[:len(b)-100] })
	mutate("flipped-payload-byte", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	mutate("overlapping-sections", func(b []byte) []byte {
		// Point section 1's offset at section 0's region and re-seal the
		// header CRC so only the overlap check can object.
		entry := b[mapSectionsStart+mapSectionSize:]
		first := le64(b[mapSectionsStart+8:])
		putLE64(entry[8:], first)
		count := int(le32(b[48:]))
		tableEnd := mapSectionsStart + count*mapSectionSize
		putLE32(b[8:], 0)
		putLE32(b[8:], crcOf(b[:tableEnd]))
		return b
	})
	mutate("oversized-dims", func(b []byte) []byte {
		putLE32(b[40:], 1<<30)
		putLE32(b[44:], 1<<30)
		count := int(le32(b[48:]))
		tableEnd := mapSectionsStart + count*mapSectionSize
		putLE32(b[8:], 0)
		putLE32(b[8:], crcOf(b[:tableEnd]))
		return b
	})

	// The untouched buffer still decodes (the mutations copied it).
	if _, err := DecodeCompiled(buf, opts); err != nil {
		t.Fatalf("pristine buffer stopped decoding: %v", err)
	}
}

// TestDecodeMisalignedInput pins the copy fallback: a view decoded
// from a deliberately misaligned byte slice must still round-trip.
func TestDecodeMisalignedInput(t *testing.T) {
	c := randomCompiled(t, 9, 8, 4, false, false)
	buf, err := EncodeCompiled(c)
	if err != nil {
		t.Fatal(err)
	}
	shifted := make([]byte, len(buf)+1)
	copy(shifted[1:], buf)
	d, err := DecodeCompiled(shifted[1:], DecodeOptions{VerifyCRC: true})
	if err != nil {
		t.Fatal(err)
	}
	checkRoundTrip(t, c, d)
}
