package trainingdb

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"unsafe"

	"indoorloc/internal/geom"
)

// Compiled-map format v2: a versioned, CRC-checked binary serialization
// of a Compiled view that can be written once by the trainer and
// memory-mapped read-only at load. The gob+gzip DB format (Save/Load)
// stores raw samples and statistics and must be re-Compiled after every
// load; a v2 artifact stores the compiled matrices themselves in their
// in-memory layout, so loading is a header parse plus pointer casts
// into the mapping — cold venue loads touch no matrix pages until the
// first query faults them in.
//
// File layout (all header fields little-endian regardless of host):
//
//	offset size
//	0      8   magic "ILRMAPv2"
//	8      4   CRC-32 (IEEE) of header+section table, this field zeroed
//	12     4   flags (bit 0: payload is little-endian)
//	16     8   source DB generation
//	24     8   floor RSSI (IEEE 754 bits)
//	32     8   floor sigma (IEEE 754 bits)
//	40     4   entry count nE
//	44     4   AP count nAP
//	48     4   section count
//	52     4   reserved (zero)
//	56     …   section table: count × {id u32, crc u32, offset u64, length u64}
//	…      …   section payloads, 8-byte aligned; per-cell matrices
//	           page-aligned (4096) so a mapping shares whole pages
//
// Sections may not overlap, must lie inside the file, and must have
// exactly the length their id and the header dimensions dictate —
// decode validates all of that before touching a payload byte, so a
// hostile header cannot make it over-allocate. Payload numbers are
// raw host-order memory at write time; a decoder on a foreign-endian
// host refuses the file rather than byte-swap (flags bit 0).
const (
	// MapMagic opens every compiled-map v2 artifact.
	MapMagic = "ILRMAPv2"

	mapHeaderSize    = 56
	mapSectionSize   = 24
	mapFlagLittle    = 1 << 0
	mapPageAlign     = 4096
	mapMaxSections   = 64
	mapSectionsStart = mapHeaderSize
)

// Section ids. Required sections carry the view's identity and the
// small per-entry vectors; the float64 matrices and the quantized
// mirror are each optional, but at least one family must be present.
const (
	secNames           uint32 = iota + 1 // [nE+1]u32 offsets + name blob
	secBSSIDs                            // [nAP+1]u32 offsets + BSSID blob
	secPos                               // [nE]{x, y float64}
	secTrained                           // [nE*nAP]bool
	secN                                 // [nE*nAP]int32
	secUnheardLL                         // [nE]float64
	secSignalBase                        // [nE]float64
	secMean                              // [nE*nAP]float64
	secSigma                             // [nE*nAP]float64
	secLogNorm                           // [nE*nAP]float64
	secFloorLL                           // [nE*nAP]float64
	secMeanQ                             // [nE*nAP]int16
	secSigmaQ                            // [nE*nAP]int16
	secLogNormQ                          // [nE*nAP]int16
	secFloorLLQ                          // [nE*nAP]int16
	secQuantFactors                      // [8*nAP]float64: {scale, off} × {mean, sigma, lognorm, floorll}
	secQuantUnheardLL                    // [nE]float64
	secQuantSignalBase                   // [nE]float64
	secEnd                               // one past the last valid id
)

var sectionNames = map[uint32]string{
	secNames: "names", secBSSIDs: "bssids", secPos: "pos",
	secTrained: "trained", secN: "n",
	secUnheardLL: "unheard-ll", secSignalBase: "signal-base",
	secMean: "mean", secSigma: "sigma", secLogNorm: "lognorm", secFloorLL: "floor-ll",
	secMeanQ: "mean-q", secSigmaQ: "sigma-q", secLogNormQ: "lognorm-q", secFloorLLQ: "floorll-q",
	secQuantFactors: "quant-factors", secQuantUnheardLL: "quant-unheard-ll",
	secQuantSignalBase: "quant-signal-base",
}

// hostLittle reports the running machine's byte order.
//
//loclint:mmapdecode single-byte probe of a local stack scalar
var hostLittle = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// geom.Point must be two packed float64s for the Pos section's raw
// cast; this fails to compile if the layout ever changes.
var _ = [1]struct{}{}[unsafe.Sizeof(geom.Point{})-16]

// byteView reinterprets a typed slice as its raw bytes, sharing memory.
//
//loclint:mmapdecode empty slices are rejected and the length is computed from the input
func byteView[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(t)))
}

// castSlice reinterprets a byte payload as n elements of T. The caller
// has already validated length and 8-byte base alignment.
//
//loclint:mmapdecode caller-checked: take/takeVar validate exact section length and alignment via parseHeader
func castSlice[T any](b []byte, n int) []T {
	if n == 0 {
		// Non-nil, so "section present but dimension zero" stays
		// distinguishable from "section absent".
		return []T{}
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&b[0])), n)
}

// Little-endian header field access (explicit, so headers parse the
// same on any host).
func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func le64(b []byte) uint64 { return uint64(le32(b)) | uint64(le32(b[4:]))<<32 }
func putLE32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}
func putLE64(b []byte, v uint64) {
	putLE32(b, uint32(v))
	putLE32(b[4:], uint32(v>>32))
}

// f64bits round-trips float64 header fields through their IEEE bits.
//
//loclint:mmapdecode caller-checked: reinterprets a local scalar in place
func f64bits(f float64) uint64 { return *(*uint64)(unsafe.Pointer(&f)) }

//loclint:mmapdecode caller-checked: reinterprets a local scalar in place
func f64frombits(u uint64) float64 { return *(*float64)(unsafe.Pointer(&u)) }

// stringTable flattens a string slice into the offsets+blob section
// payload: (n+1) uint32 offsets followed by the concatenated bytes.
func stringTable(ss []string) []byte {
	total := 0
	for _, s := range ss {
		total += len(s)
	}
	offs := make([]uint32, len(ss)+1)
	blob := make([]byte, 0, total)
	for i, s := range ss {
		offs[i] = uint32(len(blob))
		blob = append(blob, s...)
	}
	offs[len(ss)] = uint32(len(blob))
	out := make([]byte, 0, len(offs)*4+len(blob))
	out = append(out, byteView(offs)...)
	out = append(out, blob...)
	return out
}

// section is one encode-side payload with its required alignment.
type section struct {
	id    uint32
	data  []byte
	align int
}

// EncodeCompiled serializes the view into a v2 artifact. The view must
// carry the float64 matrices, the quantized mirror, or both.
func EncodeCompiled(c *Compiled) ([]byte, error) {
	nE, nAP := len(c.Names), len(c.BSSIDs)
	cells := nE * nAP
	if len(c.Pos) != nE || len(c.Trained) != cells || len(c.N) != cells ||
		len(c.UnheardLL) != nE || len(c.SignalBase) != nE {
		return nil, fmt.Errorf("trainingdb: encode: inconsistent view dimensions")
	}
	hasFloat := c.Mean != nil
	if hasFloat && (len(c.Mean) != cells || len(c.Sigma) != cells ||
		len(c.LogNorm) != cells || len(c.FloorLL) != cells) {
		return nil, fmt.Errorf("trainingdb: encode: inconsistent float64 matrices")
	}
	q := c.Quant
	if !hasFloat && q == nil {
		return nil, fmt.Errorf("trainingdb: encode: view has no matrices")
	}

	secs := []section{
		{secNames, stringTable(c.Names), 8},
		{secBSSIDs, stringTable(c.BSSIDs), 8},
		{secPos, byteView(c.Pos), 8},
		{secTrained, byteView(c.Trained), mapPageAlign},
		{secN, byteView(c.N), mapPageAlign},
		{secUnheardLL, byteView(c.UnheardLL), 8},
		{secSignalBase, byteView(c.SignalBase), 8},
	}
	if hasFloat {
		secs = append(secs,
			section{secMean, byteView(c.Mean), mapPageAlign},
			section{secSigma, byteView(c.Sigma), mapPageAlign},
			section{secLogNorm, byteView(c.LogNorm), mapPageAlign},
			section{secFloorLL, byteView(c.FloorLL), mapPageAlign},
		)
	}
	if q != nil {
		if len(q.MeanQ) != cells || len(q.SigmaQ) != cells ||
			len(q.LogNormQ) != cells || len(q.FloorLLQ) != cells ||
			len(q.MeanScale) != nAP || len(q.UnheardLL) != nE || len(q.SignalBase) != nE {
			return nil, fmt.Errorf("trainingdb: encode: inconsistent quantized mirror")
		}
		factors := make([]float64, 0, 8*nAP)
		for _, f := range [][]float64{
			q.MeanScale, q.MeanOff, q.SigmaScale, q.SigmaOff,
			q.LogNormScale, q.LogNormOff, q.FloorLLScale, q.FloorLLOff,
		} {
			if len(f) != nAP {
				return nil, fmt.Errorf("trainingdb: encode: inconsistent quantized factors")
			}
			factors = append(factors, f...)
		}
		secs = append(secs,
			section{secMeanQ, byteView(q.MeanQ), mapPageAlign},
			section{secSigmaQ, byteView(q.SigmaQ), mapPageAlign},
			section{secLogNormQ, byteView(q.LogNormQ), mapPageAlign},
			section{secFloorLLQ, byteView(q.FloorLLQ), mapPageAlign},
			section{secQuantFactors, byteView(factors), 8},
			section{secQuantUnheardLL, byteView(q.UnheardLL), 8},
			section{secQuantSignalBase, byteView(q.SignalBase), 8},
		)
	}

	// Lay the sections out after the table, honouring alignments.
	tableEnd := mapSectionsStart + len(secs)*mapSectionSize
	offsets := make([]int, len(secs))
	end := tableEnd
	for i, s := range secs {
		a := s.align
		end = (end + a - 1) / a * a
		offsets[i] = end
		end += len(s.data)
	}

	buf := make([]byte, end)
	copy(buf, MapMagic)
	flags := uint32(0)
	if hostLittle {
		flags |= mapFlagLittle
	}
	putLE32(buf[12:], flags)
	putLE64(buf[16:], c.Generation)
	putLE64(buf[24:], f64bits(c.FloorRSSI))
	putLE64(buf[32:], f64bits(c.FloorSigma))
	putLE32(buf[40:], uint32(nE))
	putLE32(buf[44:], uint32(nAP))
	putLE32(buf[48:], uint32(len(secs)))
	for i, s := range secs {
		entry := buf[mapSectionsStart+i*mapSectionSize:]
		putLE32(entry, s.id)
		putLE32(entry[4:], crc32.ChecksumIEEE(s.data))
		putLE64(entry[8:], uint64(offsets[i]))
		putLE64(entry[16:], uint64(len(s.data)))
		copy(buf[offsets[i]:], s.data)
	}
	// Header CRC covers header+table with its own field zeroed (it is).
	putLE32(buf[8:], crc32.ChecksumIEEE(buf[:tableEnd]))
	return buf, nil
}

// DecodeOptions controls DecodeCompiled's validation depth.
type DecodeOptions struct {
	// VerifyCRC checks every section's CRC-32 and the Trained bytes,
	// touching all payload pages. The serve path leaves it off so an
	// mmap load stays lazy (the header+table CRC is always checked);
	// tdbtool verify and the fuzz harness turn it on.
	VerifyCRC bool
}

// parsedSection is one validated table entry.
type parsedSection struct {
	id     uint32
	crc    uint32
	off    int
	length int
}

// parseHeader validates magic, CRC, dimensions and the section table
// (bounds, alignment, overlaps, duplicates) without touching payloads.
func parseHeader(data []byte) (gen uint64, floorRSSI, floorSigma float64, nE, nAP int, secs map[uint32]parsedSection, err error) {
	fail := func(format string, args ...any) (uint64, float64, float64, int, int, map[uint32]parsedSection, error) {
		return 0, 0, 0, 0, 0, nil, fmt.Errorf("trainingdb: decode: "+format, args...)
	}
	if len(data) < mapHeaderSize {
		return fail("truncated header (%d bytes)", len(data))
	}
	if string(data[:8]) != MapMagic {
		return fail("bad magic %q", data[:8])
	}
	flags := le32(data[12:])
	if (flags&mapFlagLittle != 0) != hostLittle {
		return fail("artifact byte order does not match this host")
	}
	count := int(le32(data[48:]))
	if count <= 0 || count > mapMaxSections {
		return fail("section count %d out of range", count)
	}
	tableEnd := mapSectionsStart + count*mapSectionSize
	if len(data) < tableEnd {
		return fail("truncated section table")
	}
	wantCRC := le32(data[8:])
	hdr := make([]byte, tableEnd)
	copy(hdr, data[:tableEnd])
	putLE32(hdr[8:], 0)
	if got := crc32.ChecksumIEEE(hdr); got != wantCRC {
		return fail("header CRC mismatch (%08x != %08x)", got, wantCRC)
	}
	nE = int(le32(data[40:]))
	nAP = int(le32(data[44:]))
	// A valid file stores ≥1 byte per Trained cell, so the dimensions
	// are bounded by the file size — checked via section lengths below;
	// this guard only blocks multiplication overflow.
	if nE < 0 || nAP < 0 || (nAP != 0 && nE > (1<<31)/max(nAP, 1)) {
		return fail("dimensions %d×%d out of range", nE, nAP)
	}
	secs = make(map[uint32]parsedSection, count)
	ordered := make([]parsedSection, 0, count)
	for i := 0; i < count; i++ {
		entry := data[mapSectionsStart+i*mapSectionSize:]
		s := parsedSection{id: le32(entry), crc: le32(entry[4:])}
		off, length := le64(entry[8:]), le64(entry[16:])
		if s.id == 0 || s.id >= secEnd {
			return fail("unknown section id %d", s.id)
		}
		if off%8 != 0 {
			return fail("section %s misaligned at %d", sectionNames[s.id], off)
		}
		if off < uint64(tableEnd) || off > uint64(len(data)) || length > uint64(len(data))-off {
			return fail("section %s out of bounds", sectionNames[s.id])
		}
		s.off, s.length = int(off), int(length)
		if _, dup := secs[s.id]; dup {
			return fail("duplicate section %s", sectionNames[s.id])
		}
		secs[s.id] = s
		ordered = append(ordered, s)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].off < ordered[j].off })
	prevEnd := tableEnd
	for _, s := range ordered {
		if s.off < prevEnd {
			return fail("section %s overlaps its predecessor", sectionNames[s.id])
		}
		prevEnd = s.off + s.length
	}
	return le64(data[16:]), f64frombits(le64(data[24:])), f64frombits(le64(data[32:])), nE, nAP, secs, nil
}

// decodeStrings rebuilds a string slice from an offsets+blob section,
// with every string an unsafe view into the payload (zero copy).
//
//loclint:mmapdecode table length, blob length, and offset monotonicity all checked before each view
func decodeStrings(payload []byte, n int, what string) ([]string, error) {
	offBytes := (n + 1) * 4
	if len(payload) < offBytes {
		return nil, fmt.Errorf("trainingdb: decode: %s table truncated", what)
	}
	offs := castSlice[uint32](payload, n+1)
	blob := payload[offBytes:]
	if int(offs[n]) != len(blob) {
		return nil, fmt.Errorf("trainingdb: decode: %s blob length mismatch", what)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		if offs[i] > offs[i+1] {
			return nil, fmt.Errorf("trainingdb: decode: %s offsets not monotonic", what)
		}
		if offs[i] == offs[i+1] {
			continue
		}
		out[i] = unsafe.String(&blob[offs[i]], int(offs[i+1]-offs[i]))
	}
	return out, nil
}

// DecodeCompiled rebuilds a Compiled view from a v2 artifact. The view
// aliases data — slices and strings point straight into it, so the
// caller must keep data immutable and alive for the view's lifetime
// (an mmap'd file region, or any byte slice). If data's base address
// is not 8-byte aligned the payload is copied once instead of aliased.
//
//loclint:mmapdecode alignment probe behind a len guard; section casts delegate to the blessed helpers
func DecodeCompiled(data []byte, opts DecodeOptions) (*Compiled, error) {
	if len(data) > 0 && uintptr(unsafe.Pointer(&data[0]))%8 != 0 {
		aligned := make([]byte, len(data))
		copy(aligned, data)
		data = aligned
	}
	gen, floorRSSI, floorSigma, nE, nAP, secs, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	cells := nE * nAP

	// take fetches a required section after validating its exact
	// length; the expected sizes derive from the header dimensions, so
	// nothing downstream allocates more than the file can justify.
	missing := func(id uint32) error {
		return fmt.Errorf("trainingdb: decode: missing section %s", sectionNames[id])
	}
	take := func(id uint32, wantLen int) ([]byte, error) {
		s, ok := secs[id]
		if !ok {
			return nil, missing(id)
		}
		if s.length != wantLen {
			return nil, fmt.Errorf("trainingdb: decode: section %s is %d bytes, want %d",
				sectionNames[id], s.length, wantLen)
		}
		p := data[s.off : s.off+s.length]
		if opts.VerifyCRC {
			if got := crc32.ChecksumIEEE(p); got != s.crc {
				return nil, fmt.Errorf("trainingdb: decode: section %s CRC mismatch (%08x != %08x)",
					sectionNames[id], got, s.crc)
			}
		}
		return p, nil
	}
	// Variable-length string sections validate bounds internally.
	takeVar := func(id uint32) ([]byte, error) {
		s, ok := secs[id]
		if !ok {
			return nil, missing(id)
		}
		p := data[s.off : s.off+s.length]
		if opts.VerifyCRC {
			if got := crc32.ChecksumIEEE(p); got != s.crc {
				return nil, fmt.Errorf("trainingdb: decode: section %s CRC mismatch (%08x != %08x)",
					sectionNames[id], got, s.crc)
			}
		}
		return p, nil
	}

	c := &Compiled{
		Generation: gen,
		FloorRSSI:  floorRSSI,
		FloorSigma: floorSigma,
		backing:    data,
	}
	namesPayload, err := takeVar(secNames)
	if err != nil {
		return nil, err
	}
	if c.Names, err = decodeStrings(namesPayload, nE, "names"); err != nil {
		return nil, err
	}
	bssidPayload, err := takeVar(secBSSIDs)
	if err != nil {
		return nil, err
	}
	if c.BSSIDs, err = decodeStrings(bssidPayload, nAP, "bssids"); err != nil {
		return nil, err
	}
	p, err := take(secPos, nE*16)
	if err != nil {
		return nil, err
	}
	c.Pos = castSlice[geom.Point](p, nE)
	if p, err = take(secTrained, cells); err != nil {
		return nil, err
	}
	if opts.VerifyCRC {
		for i, b := range p {
			if b > 1 {
				return nil, fmt.Errorf("trainingdb: decode: trained byte %d is %d", i, b)
			}
		}
	}
	c.Trained = castSlice[bool](p, cells)
	if p, err = take(secN, cells*4); err != nil {
		return nil, err
	}
	c.N = castSlice[int32](p, cells)
	if p, err = take(secUnheardLL, nE*8); err != nil {
		return nil, err
	}
	c.UnheardLL = castSlice[float64](p, nE)
	if p, err = take(secSignalBase, nE*8); err != nil {
		return nil, err
	}
	c.SignalBase = castSlice[float64](p, nE)

	_, hasFloat := secs[secMean]
	if hasFloat {
		if p, err = take(secMean, cells*8); err != nil {
			return nil, err
		}
		c.Mean = castSlice[float64](p, cells)
		if p, err = take(secSigma, cells*8); err != nil {
			return nil, err
		}
		c.Sigma = castSlice[float64](p, cells)
		if p, err = take(secLogNorm, cells*8); err != nil {
			return nil, err
		}
		c.LogNorm = castSlice[float64](p, cells)
		if p, err = take(secFloorLL, cells*8); err != nil {
			return nil, err
		}
		c.FloorLL = castSlice[float64](p, cells)
	}
	if _, hasQuant := secs[secMeanQ]; hasQuant {
		q := &Quant{}
		if p, err = take(secMeanQ, cells*2); err != nil {
			return nil, err
		}
		q.MeanQ = castSlice[int16](p, cells)
		if p, err = take(secSigmaQ, cells*2); err != nil {
			return nil, err
		}
		q.SigmaQ = castSlice[int16](p, cells)
		if p, err = take(secLogNormQ, cells*2); err != nil {
			return nil, err
		}
		q.LogNormQ = castSlice[int16](p, cells)
		if p, err = take(secFloorLLQ, cells*2); err != nil {
			return nil, err
		}
		q.FloorLLQ = castSlice[int16](p, cells)
		if p, err = take(secQuantFactors, 8*nAP*8); err != nil {
			return nil, err
		}
		factors := castSlice[float64](p, 8*nAP)
		q.MeanScale = factors[0*nAP : 1*nAP : 1*nAP]
		q.MeanOff = factors[1*nAP : 2*nAP : 2*nAP]
		q.SigmaScale = factors[2*nAP : 3*nAP : 3*nAP]
		q.SigmaOff = factors[3*nAP : 4*nAP : 4*nAP]
		q.LogNormScale = factors[4*nAP : 5*nAP : 5*nAP]
		q.LogNormOff = factors[5*nAP : 6*nAP : 6*nAP]
		q.FloorLLScale = factors[6*nAP : 7*nAP : 7*nAP]
		q.FloorLLOff = factors[7*nAP : 8*nAP : 8*nAP]
		if p, err = take(secQuantUnheardLL, nE*8); err != nil {
			return nil, err
		}
		q.UnheardLL = castSlice[float64](p, nE)
		if p, err = take(secQuantSignalBase, nE*8); err != nil {
			return nil, err
		}
		q.SignalBase = castSlice[float64](p, nE)
		c.Quant = q
	}
	if !hasFloat && c.Quant == nil {
		return nil, fmt.Errorf("trainingdb: decode: artifact carries no matrices")
	}

	c.apIndex = make(map[string]int, nAP)
	for j, b := range c.BSSIDs {
		c.apIndex[b] = j
	}
	return c, nil
}

// SectionInfo describes one artifact section for inspection tools.
type SectionInfo struct {
	ID     uint32
	Name   string
	Offset uint64
	Length uint64
	CRC    uint32
}

// FileInfo is the human-readable artifact summary tdbtool inspect
// prints: the header fields plus the section table.
type FileInfo struct {
	Version      string
	LittleEndian bool
	Generation   uint64
	FloorRSSI    float64
	FloorSigma   float64
	NumEntries   int
	NumAPs       int
	Quantized    bool
	HasFloat64   bool
	Sections     []SectionInfo
}

// ReadFileInfo parses and validates an artifact's header and section
// table without decoding payloads.
func ReadFileInfo(data []byte) (*FileInfo, error) {
	gen, floorRSSI, floorSigma, nE, nAP, secs, err := parseHeader(data)
	if err != nil {
		return nil, err
	}
	info := &FileInfo{
		Version:      MapMagic,
		LittleEndian: le32(data[12:])&mapFlagLittle != 0,
		Generation:   gen,
		FloorRSSI:    floorRSSI,
		FloorSigma:   floorSigma,
		NumEntries:   nE,
		NumAPs:       nAP,
	}
	_, info.HasFloat64 = secs[secMean]
	_, info.Quantized = secs[secMeanQ]
	for _, s := range secs {
		info.Sections = append(info.Sections, SectionInfo{
			ID: s.id, Name: sectionNames[s.id],
			Offset: uint64(s.off), Length: uint64(s.length), CRC: s.crc,
		})
	}
	sort.Slice(info.Sections, func(i, j int) bool { return info.Sections[i].Offset < info.Sections[j].Offset })
	return info, nil
}

// WriteCompiledFile atomically writes the view as a v2 artifact: the
// bytes land in a temp file in the target directory, are fsynced, and
// replace path via rename, so readers never observe a torn artifact.
func WriteCompiledFile(path string, c *Compiled) error {
	buf, err := EncodeCompiled(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ilrmap-*")
	if err != nil {
		return fmt.Errorf("trainingdb: write artifact: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("trainingdb: write artifact: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("trainingdb: sync artifact: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("trainingdb: close artifact: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("trainingdb: publish artifact: %w", err)
	}
	return nil
}
