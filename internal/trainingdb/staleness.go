package trainingdb

import (
	"sort"

	"indoorloc/internal/stats"
)

// StaleAP is one AP whose live distribution no longer matches its
// training snapshot at a location.
type StaleAP struct {
	Location string
	BSSID    string
	// KS is the two-sample Kolmogorov–Smirnov statistic between the
	// training samples and the fresh observations.
	KS float64
	// Critical is the significance threshold the statistic exceeded.
	Critical float64
	// MeanShift is the fresh mean minus the trained mean, in dB.
	MeanShift float64
}

// Staleness compares fresh RSSI samples against a location's training
// snapshot, AP by AP, with a two-sample KS test at level alpha
// (default 0.05 when alpha ≤ 0). It returns the APs whose
// distributions have drifted significantly — the recalibration alarm
// for the paper's "unstableness" problem: when the world moves away
// from the fingerprint map, detect it instead of silently
// mislocalizing.
//
// fresh maps BSSID → raw RSSI samples captured recently at (or near)
// the location. APs absent from either side are skipped: presence
// changes are a coarser signal better caught by audibility checks.
func (db *DB) Staleness(location string, fresh map[string][]float64, alpha float64) []StaleAP {
	e, ok := db.Entries[location]
	if !ok {
		return nil
	}
	if alpha <= 0 {
		alpha = 0.05
	}
	var out []StaleAP
	bssids := make([]string, 0, len(fresh))
	for b := range fresh {
		bssids = append(bssids, b)
	}
	sort.Strings(bssids)
	for _, b := range bssids {
		samples := fresh[b]
		s, trained := e.PerAP[b]
		if !trained || len(samples) == 0 || len(s.Samples) == 0 {
			continue
		}
		ks := stats.KSStatistic(s.Samples, samples)
		crit := stats.KSCritical(len(s.Samples), len(samples), alpha)
		if ks > crit {
			out = append(out, StaleAP{
				Location:  location,
				BSSID:     b,
				KS:        ks,
				Critical:  crit,
				MeanShift: stats.Mean(samples) - s.Mean,
			})
		}
	}
	return out
}
