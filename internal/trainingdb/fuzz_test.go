package trainingdb

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"indoorloc/internal/geom"
)

// fuzzFixture builds a small two-entry view, quantized with both
// matrix families present so every section id appears in the artifact.
func fuzzFixture() *Compiled {
	db := &DB{
		Entries: map[string]*Entry{
			"hall": {Name: "hall", Pos: geom.Pt(3, 4), PerAP: map[string]*APStats{
				"apA": {BSSID: "apA", N: 5, Mean: -58, StdDev: 2.5},
				"apB": {BSSID: "apB", N: 3, Mean: -71, StdDev: 4},
			}},
			"porch": {Name: "porch", Pos: geom.Pt(9, 1), PerAP: map[string]*APStats{
				"apB": {BSSID: "apB", N: 6, Mean: -64, StdDev: 1.5},
			}},
		},
		BSSIDs: []string{"apA", "apB"},
	}
	c := db.Compile(-95, 4)
	c.Quantize()
	return c
}

// fuzzSeeds returns the named seed corpus: a pristine artifact plus
// the corruption classes decode must reject (truncations, corrupt
// CRCs, overlapping sections, hostile dimensions).
func fuzzSeeds() map[string][]byte {
	buf, err := EncodeCompiled(fuzzFixture())
	if err != nil {
		panic(err)
	}
	reseal := func(b []byte) []byte {
		tableEnd := mapSectionsStart + int(le32(b[48:]))*mapSectionSize
		putLE32(b[8:], 0)
		putLE32(b[8:], crcOf(b[:tableEnd]))
		return b
	}
	cp := func() []byte { return append([]byte(nil), buf...) }

	seeds := map[string][]byte{
		"valid":            cp(),
		"empty":            {},
		"magic-only":       []byte(MapMagic),
		"truncated-header": cp()[:mapHeaderSize-7],
		"truncated-table":  cp()[:mapHeaderSize+5],
		"short-payload":    cp()[:len(buf)-64],
	}
	b := cp()
	b[len(b)-1] ^= 0xa5 // corrupt last section payload
	seeds["corrupt-crc"] = b

	b = cp()
	putLE64(b[mapSectionsStart+mapSectionSize+8:], le64(b[mapSectionsStart+8:]))
	seeds["overlapping-sections"] = reseal(b)

	b = cp()
	putLE32(b[40:], 0x40000000)
	putLE32(b[44:], 0x40000000)
	seeds["hostile-dims"] = reseal(b)
	return seeds
}

// FuzzCompiledDecode hammers the v2 artifact decoder: arbitrary bytes
// must either decode into a self-consistent view or return an error —
// never panic, and never allocate matrices beyond what the input's own
// size can justify.
func FuzzCompiledDecode(f *testing.F) {
	for _, seed := range fuzzSeeds() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := DecodeCompiled(data, DecodeOptions{VerifyCRC: true})
		if err != nil {
			if c != nil {
				t.Fatal("decode returned both a view and an error")
			}
			return
		}
		// A valid artifact stores at least one byte per Trained cell, so
		// a decode that "succeeded" with matrices larger than the input
		// over-allocated.
		nE, nAP := c.NumEntries(), c.NumAPs()
		cells := nE * nAP
		if cells > len(data) {
			t.Fatalf("decoded %d cells from %d input bytes", cells, len(data))
		}
		// Touch every decoded surface; corrupt views crash here.
		if len(c.Pos) != nE || len(c.UnheardLL) != nE || len(c.SignalBase) != nE ||
			len(c.Trained) != cells || len(c.N) != cells {
			t.Fatal("inconsistent decoded dimensions")
		}
		for _, name := range c.Names {
			_ = len(name)
		}
		for j, b := range c.BSSIDs {
			if got, ok := c.APIndex(b); ok && got != j {
				// Duplicate BSSIDs are representable; the index maps to
				// one of the duplicates.
				_ = got
			}
		}
		if q := c.Quant; q != nil {
			if len(q.MeanQ) != cells || len(q.MeanScale) != nAP {
				t.Fatal("inconsistent quantized dimensions")
			}
		}
		// The view must survive re-encoding (it may not be bytewise
		// identical: section order and padding renormalize).
		if _, err := EncodeCompiled(c); err != nil {
			t.Fatalf("re-encode of decoded view failed: %v", err)
		}
	})
}

// TestFuzzSeedsBehave pins the seed corpus semantics outside the fuzz
// engine: the pristine seed decodes, every corruption seed errors.
func TestFuzzSeedsBehave(t *testing.T) {
	for name, seed := range fuzzSeeds() {
		_, err := DecodeCompiled(seed, DecodeOptions{VerifyCRC: true})
		if name == "valid" {
			if err != nil {
				t.Errorf("valid seed failed to decode: %v", err)
			}
		} else if err == nil {
			t.Errorf("seed %s decoded without error", name)
		}
	}
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz/FuzzCompiledDecode. Gated behind an env var: run
//
//	ILR_WRITE_FUZZ_CORPUS=1 go test ./internal/trainingdb -run WriteFuzzCorpus
//
// after a format change, and commit the result.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("ILR_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set ILR_WRITE_FUZZ_CORPUS=1 to regenerate the corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzCompiledDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	for name, seed := range fuzzSeeds() {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", seed)
		if err := os.WriteFile(filepath.Join(dir, "seed-"+name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
