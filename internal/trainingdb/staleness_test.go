package trainingdb

import (
	"math"
	"math/rand"
	"testing"
)

// staleFixture builds a DB with one location whose AP has a tight
// Gaussian sample set.
func staleFixture(t *testing.T) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(4))
	samples := make([]float64, 120)
	var mean float64
	for i := range samples {
		samples[i] = -60 + rng.NormFloat64()*2.5
		mean += samples[i]
	}
	mean /= float64(len(samples))
	return &DB{
		Entries: map[string]*Entry{
			"kitchen": {
				Name: "kitchen",
				PerAP: map[string]*APStats{
					"ap0": {BSSID: "ap0", N: len(samples), Mean: mean, Samples: samples},
				},
			},
		},
		BSSIDs: []string{"ap0"},
	}
}

func freshSamples(seed int64, n int, mean, sd float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = mean + rng.NormFloat64()*sd
	}
	return out
}

func TestStalenessCleanWorldQuiet(t *testing.T) {
	db := staleFixture(t)
	fresh := map[string][]float64{"ap0": freshSamples(9, 100, -60, 2.5)}
	if stale := db.Staleness("kitchen", fresh, 0.01); len(stale) != 0 {
		t.Errorf("clean world flagged: %+v", stale)
	}
}

func TestStalenessDetectsShift(t *testing.T) {
	db := staleFixture(t)
	fresh := map[string][]float64{"ap0": freshSamples(9, 100, -54, 2.5)}
	stale := db.Staleness("kitchen", fresh, 0.05)
	if len(stale) != 1 {
		t.Fatalf("6 dB shift not flagged: %+v", stale)
	}
	s := stale[0]
	if s.Location != "kitchen" || s.BSSID != "ap0" {
		t.Errorf("identity: %+v", s)
	}
	if s.KS <= s.Critical {
		t.Errorf("KS %v not above critical %v", s.KS, s.Critical)
	}
	if math.Abs(s.MeanShift-6) > 1.5 {
		t.Errorf("MeanShift = %v, want ≈6", s.MeanShift)
	}
}

func TestStalenessSkipsUnknowns(t *testing.T) {
	db := staleFixture(t)
	fresh := map[string][]float64{
		"ghost": freshSamples(3, 50, -40, 1), // untrained AP: skipped
		"ap0":   nil,                         // no fresh samples: skipped
	}
	if stale := db.Staleness("kitchen", fresh, 0.05); len(stale) != 0 {
		t.Errorf("skips failed: %+v", stale)
	}
	if stale := db.Staleness("nowhere", fresh, 0.05); stale != nil {
		t.Error("unknown location returned results")
	}
}

func TestStalenessDefaultAlpha(t *testing.T) {
	db := staleFixture(t)
	fresh := map[string][]float64{"ap0": freshSamples(9, 100, -54, 2.5)}
	if stale := db.Staleness("kitchen", fresh, 0); len(stale) != 1 {
		t.Error("default alpha failed to flag an obvious shift")
	}
}
