package trainingdb

import (
	"math"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

// compiledFixture builds a two-entry DB with deliberately partial AP
// coverage: "hall" hears apX and apY, "kitchen" hears only apY, and
// apX's samples are constant to exercise the MinSigma clamp.
func compiledFixture() *DB {
	mk := func(bssid string, n int, mean, sd float64) *APStats {
		return &APStats{BSSID: bssid, N: n, Mean: mean, StdDev: sd,
			Min: mean - sd, Max: mean + sd, Samples: []float64{mean, mean}}
	}
	return &DB{
		Entries: map[string]*Entry{
			"hall": {Name: "hall", Pos: geom.Pt(10, 20), PerAP: map[string]*APStats{
				"apX": mk("apX", 9, -60, 0), // constant samples: σ below MinSigma
				"apY": mk("apY", 4, -72, 3),
			}},
			"kitchen": {Name: "kitchen", Pos: geom.Pt(30, 5), PerAP: map[string]*APStats{
				"apY": mk("apY", 7, -55, 2),
			}},
		},
		BSSIDs: []string{"apX", "apY"},
	}
}

func TestCompileLayout(t *testing.T) {
	db := compiledFixture()
	c := db.Compile(-95, 4)
	if c.NumEntries() != 2 || c.NumAPs() != 2 {
		t.Fatalf("dims = %d×%d", c.NumEntries(), c.NumAPs())
	}
	if c.Names[0] != "hall" || c.Names[1] != "kitchen" {
		t.Fatalf("Names = %v", c.Names)
	}
	if c.Pos[0] != geom.Pt(10, 20) || c.Pos[1] != geom.Pt(30, 5) {
		t.Fatalf("Pos = %v", c.Pos)
	}
	if j, ok := c.APIndex("apY"); !ok || j != 1 {
		t.Fatalf("APIndex(apY) = %d %v", j, ok)
	}
	if _, ok := c.APIndex("ghost"); ok {
		t.Fatal("APIndex accepted unknown BSSID")
	}

	// hall row: both cells trained.
	if !c.Trained[0] || !c.Trained[1] {
		t.Fatalf("hall Trained = %v", c.Trained[:2])
	}
	// kitchen row: apX untrained, apY trained.
	if c.Trained[2] || !c.Trained[3] {
		t.Fatalf("kitchen Trained = %v", c.Trained[2:])
	}
	// Constant-sample σ clamps to MinSigma; untrained cells read the
	// floor model.
	if c.Sigma[0] != stats.MinSigma {
		t.Errorf("clamped sigma = %v", c.Sigma[0])
	}
	if c.Mean[2] != -95 || c.Sigma[2] != 4 {
		t.Errorf("untrained cell = mean %v sigma %v", c.Mean[2], c.Sigma[2])
	}
	if c.N[0] != 9 || c.N[2] != 0 {
		t.Errorf("N = %v", c.N)
	}

	// LogNorm and FloorLL agree with the stats primitives.
	wantNorm := -math.Log(stats.MinSigma) - 0.5*math.Log(2*math.Pi)
	if math.Abs(c.LogNorm[0]-wantNorm) > 1e-12 {
		t.Errorf("LogNorm = %v, want %v", c.LogNorm[0], wantNorm)
	}
	wantFloor := stats.LogGaussianPDF(-95, -60, 0)
	if c.FloorLL[0] != wantFloor {
		t.Errorf("FloorLL = %v, want %v", c.FloorLL[0], wantFloor)
	}
	if c.FloorLL[2] != 0 {
		t.Errorf("untrained FloorLL = %v", c.FloorLL[2])
	}

	// Baselines sum the trained cells only.
	wantUnheard := c.FloorLL[0] + c.FloorLL[1]
	if math.Abs(c.UnheardLL[0]-wantUnheard) > 1e-12 {
		t.Errorf("UnheardLL = %v, want %v", c.UnheardLL[0], wantUnheard)
	}
	wantBase := (-95.0+60)*(-95.0+60) + (-95.0+72)*(-95.0+72)
	if math.Abs(c.SignalBase[0]-wantBase) > 1e-9 {
		t.Errorf("SignalBase = %v, want %v", c.SignalBase[0], wantBase)
	}

	// FloorSigma clamps like the Gaussian primitives do.
	if got := db.Compile(-95, 0).FloorSigma; got != stats.MinSigma {
		t.Errorf("FloorSigma = %v, want clamp to %v", got, stats.MinSigma)
	}
}

func TestCompileSnapshotsDB(t *testing.T) {
	db := compiledFixture()
	c := db.Compile(-95, 4)
	other := &DB{
		Entries: map[string]*Entry{"attic": {Name: "attic", Pos: geom.Pt(0, 0),
			PerAP: map[string]*APStats{"apZ": {BSSID: "apZ", N: 1, Mean: -80, Samples: []float64{-80}}}}},
		BSSIDs: []string{"apZ"},
	}
	if err := db.Merge(other); err != nil {
		t.Fatal(err)
	}
	if c.NumEntries() != 2 || c.NumAPs() != 2 {
		t.Error("compiled view changed after Merge; it must be a snapshot")
	}
}

func TestIntern(t *testing.T) {
	db := compiledFixture()
	c := db.Compile(-95, 4)
	obs := map[string]float64{"apY": -50, "ghost": -40, "apX": -61}
	cols, vals := c.Intern(obs, nil, nil)
	if len(cols) != 2 || len(vals) != 2 {
		t.Fatalf("interned %d cols", len(cols))
	}
	if cols[0] != 0 || cols[1] != 1 {
		t.Errorf("cols = %v, want sorted [0 1]", cols)
	}
	if vals[0] != -61 || vals[1] != -50 {
		t.Errorf("vals = %v", vals)
	}
	// Reusing scratch must not grow the result.
	cols, vals = c.Intern(obs, cols[:0], vals[:0])
	if len(cols) != 2 || cols[0] != 0 {
		t.Errorf("reused scratch: cols = %v", cols)
	}
	if got, _ := c.Intern(map[string]float64{"ghost": -40}, nil, nil); len(got) != 0 {
		t.Errorf("unknown-only observation interned to %v", got)
	}
}

func TestNamesCachedAndInvalidated(t *testing.T) {
	db := compiledFixture()
	a := db.Names()
	b := db.Names()
	if len(a) != 2 || a[0] != "hall" || a[1] != "kitchen" {
		t.Fatalf("Names = %v", a)
	}
	if &a[0] != &b[0] {
		t.Error("Names rebuilt despite no mutation")
	}
	other := &DB{
		Entries: map[string]*Entry{"attic": {Name: "attic", Pos: geom.Pt(0, 0),
			PerAP: map[string]*APStats{"apZ": {BSSID: "apZ", N: 1, Mean: -80, Samples: []float64{-80}}}}},
		BSSIDs: []string{"apZ"},
	}
	if err := db.Merge(other); err != nil {
		t.Fatal(err)
	}
	if got := db.Names(); len(got) != 3 || got[0] != "attic" {
		t.Errorf("Names after Merge = %v", got)
	}
	if !db.RemoveEntry("attic") {
		t.Fatal("RemoveEntry failed")
	}
	if got := db.Names(); len(got) != 2 || got[0] != "hall" {
		t.Errorf("Names after RemoveEntry = %v", got)
	}
}
