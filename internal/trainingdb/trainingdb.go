// Package trainingdb implements the Training Database Generator: it
// joins a wi-scan collection (one file per training location) with a
// location map (names → coordinates) and produces a compact database
// of observation records and per-⟨location, AP⟩ statistics.
//
// The paper motivates the database over raw wi-scan collections on two
// grounds: it is compressed, so it moves over a network easily, and it
// loads into memory much faster than re-reading wi-scan files line by
// line. Save/Load therefore use gob encoding under gzip.
package trainingdb

import (
	"compress/gzip"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"

	"indoorloc/internal/geom"
	"indoorloc/internal/locmap"
	"indoorloc/internal/stats"
	"indoorloc/internal/wiscan"
)

// APStats summarises one AP's signal at one training location — the
// ⟨training point, AP⟩ mean and standard deviation the paper computes
// in its training phase, plus extrema and the raw samples for
// distribution-aware methods.
type APStats struct {
	BSSID    string
	N        int
	Mean     float64
	StdDev   float64
	Min, Max float64
	// Samples holds the raw RSSI values in capture order. Histogram and
	// percentile methods need the full distribution, not just moments.
	Samples []float64
}

// Entry is one training location's record set.
type Entry struct {
	Name string
	Pos  geom.Point
	// PerAP holds statistics keyed by BSSID.
	PerAP map[string]*APStats
}

// MeanVector returns the entry's mean RSSI for each requested BSSID.
// APs never heard at this location report def (use the receiver floor,
// matching how fingerprinting handles missing APs).
func (e *Entry) MeanVector(bssids []string, def float64) []float64 {
	out := make([]float64, len(bssids))
	for i, b := range bssids {
		if s, ok := e.PerAP[b]; ok {
			out[i] = s.Mean
		} else {
			out[i] = def
		}
	}
	return out
}

// DB is a training database: every training location's observations
// and statistics, plus the universe of BSSIDs seen during training.
type DB struct {
	Entries map[string]*Entry
	// BSSIDs lists every BSSID observed anywhere during training,
	// sorted, defining the canonical AP ordering for signal vectors.
	BSSIDs []string

	// namesMu guards names, the lazily-built sorted-name cache.
	// Mutators that add or remove entries (Merge, RemoveEntry) call
	// invalidateNames; gob skips unexported fields, so a loaded DB
	// simply rebuilds the cache on first use.
	namesMu sync.Mutex
	names   []string

	// gen counts mutations (Merge, PruneAPs, RemoveEntry, Fold). A
	// Compiled view records the generation it was built from, so
	// consumers can detect that a view has gone stale instead of
	// silently serving matrices compiled from an older entry set. Gob
	// skips unexported fields: a freshly loaded DB starts at generation
	// zero, which is correct — nothing compiled from it exists yet.
	gen uint64
}

// Generation returns the DB's mutation counter. It starts at zero and
// is bumped by every mutator (Merge, PruneAPs, RemoveEntry, Fold).
// Locators and Compiled views bind to the generation current when they
// were built; comparing generations detects mutation-after-build.
// Mutators are not safe for concurrent use with each other (they never
// were); Generation itself is a plain read and follows the same rule.
func (db *DB) Generation() uint64 { return db.gen }

// bumpGeneration records one mutation.
func (db *DB) bumpGeneration() { db.gen++ }

// SetGeneration overwrites the mutation counter. It exists for exactly
// one caller: replication, which reconstructs a replica database from
// a compiled artifact plus exact per-cell resume state and must align
// the replica's counter with the source's so that subsequent Folds
// produce the same generation numbers on both sides. Anything else
// that reaches for this is defeating the staleness contract.
func (db *DB) SetGeneration(gen uint64) { db.gen = gen }

// Options controls Generate.
type Options struct {
	// SkipUnmapped drops wi-scan files whose location is missing from
	// the location map instead of failing. Skipped names are returned.
	SkipUnmapped bool
}

// ErrNoEntries is returned when generation produces an empty database.
var ErrNoEntries = errors.New("trainingdb: no entries")

// Generate builds a database from a wi-scan collection and a location
// map. Every wi-scan location must appear in the map unless
// opts.SkipUnmapped is set. The returned slice lists skipped locations
// (nil when none).
func Generate(c *wiscan.Collection, m *locmap.Map, opts Options) (*DB, []string, error) {
	db := &DB{Entries: make(map[string]*Entry)}
	var skipped []string
	bssidSet := make(map[string]bool)
	for _, loc := range c.Locations() {
		pos, ok := m.Lookup(loc)
		if !ok {
			if opts.SkipUnmapped {
				skipped = append(skipped, loc)
				continue
			}
			return nil, nil, fmt.Errorf("trainingdb: location %q not in location map", loc)
		}
		entry := &Entry{Name: loc, Pos: pos, PerAP: make(map[string]*APStats)}
		f := c.Files[loc]
		type acc struct {
			run     stats.Running
			samples []float64
		}
		accs := make(map[string]*acc)
		for _, rec := range f.Records {
			a := accs[rec.BSSID]
			if a == nil {
				a = &acc{}
				accs[rec.BSSID] = a
			}
			a.run.Add(float64(rec.RSSI))
			a.samples = append(a.samples, float64(rec.RSSI))
		}
		for bssid, a := range accs {
			bssidSet[bssid] = true
			entry.PerAP[bssid] = &APStats{
				BSSID:   bssid,
				N:       a.run.N(),
				Mean:    a.run.Mean(),
				StdDev:  a.run.StdDev(),
				Min:     a.run.Min(),
				Max:     a.run.Max(),
				Samples: a.samples,
			}
		}
		db.Entries[loc] = entry
	}
	if len(db.Entries) == 0 {
		return nil, nil, ErrNoEntries
	}
	for b := range bssidSet {
		db.BSSIDs = append(db.BSSIDs, b)
	}
	sort.Strings(db.BSSIDs)
	return db, skipped, nil
}

// Names returns the training location names, sorted. The slice is
// cached (sorting every call was pure overhead on the localization hot
// path) and shared between callers: treat it as read-only.
func (db *DB) Names() []string {
	db.namesMu.Lock()
	defer db.namesMu.Unlock()
	if db.names == nil {
		db.names = make([]string, 0, len(db.Entries))
		for n := range db.Entries {
			db.names = append(db.names, n)
		}
		sort.Strings(db.names)
	}
	return db.names
}

// invalidateNames drops the sorted-name cache after the entry set
// changes.
func (db *DB) invalidateNames() {
	db.namesMu.Lock()
	db.names = nil
	db.namesMu.Unlock()
}

// Len returns the number of training locations.
func (db *DB) Len() int { return len(db.Entries) }

// TotalSamples returns the number of raw observations stored.
func (db *DB) TotalSamples() int {
	n := 0
	for _, e := range db.Entries {
		for _, s := range e.PerAP {
			n += s.N
		}
	}
	return n
}

// NearestEntry returns the training location closest to p, breaking
// ties toward the lexically smaller name. ok is false for an empty DB.
// The paper's "valid estimation" metric asks whether the localizer
// returned exactly this entry.
func (db *DB) NearestEntry(p geom.Point) (*Entry, bool) {
	var bestEntry *Entry
	best := math.Inf(1)
	for _, name := range db.Names() {
		e := db.Entries[name]
		if d := p.DistSq(e.Pos); d < best {
			best = d
			bestEntry = e
		}
	}
	return bestEntry, bestEntry != nil
}

// Merge folds another database's entries into db. Colliding location
// names are an error (re-training a location should replace it
// explicitly, not silently blend). All collisions are checked before
// anything is copied, so a failed merge leaves db untouched.
func (db *DB) Merge(other *DB) error {
	for name := range other.Entries {
		if _, dup := db.Entries[name]; dup {
			return fmt.Errorf("trainingdb: merge collision on %q", name)
		}
	}
	for name, e := range other.Entries {
		db.Entries[name] = e
	}
	db.invalidateNames()
	set := make(map[string]bool, len(db.BSSIDs)+len(other.BSSIDs))
	for _, b := range db.BSSIDs {
		set[b] = true
	}
	for _, b := range other.BSSIDs {
		set[b] = true
	}
	db.BSSIDs = db.BSSIDs[:0]
	for b := range set {
		db.BSSIDs = append(db.BSSIDs, b)
	}
	sort.Strings(db.BSSIDs)
	db.bumpGeneration()
	return nil
}

// DistanceSamples returns (distance, RSSI) pairs for one AP across all
// training entries: each entry contributes its samples at the entry's
// distance from apPos. This is exactly the scatter the paper fits in
// Figure 4.
func (db *DB) DistanceSamples(bssid string, apPos geom.Point) (dists, rssis []float64) {
	for _, name := range db.Names() {
		e := db.Entries[name]
		s, ok := e.PerAP[bssid]
		if !ok {
			continue
		}
		d := e.Pos.Dist(apPos)
		for _, v := range s.Samples {
			dists = append(dists, d)
			rssis = append(rssis, v)
		}
	}
	return dists, rssis
}

// fileHeader guards against loading foreign gob streams.
const fileHeader = "indoorloc-tdb-v1"

// Save writes the database, gzip-compressed, to w.
func Save(w io.Writer, db *DB) error {
	zw := gzip.NewWriter(w)
	enc := gob.NewEncoder(zw)
	if err := enc.Encode(fileHeader); err != nil {
		return fmt.Errorf("trainingdb: encode header: %w", err)
	}
	if err := enc.Encode(db); err != nil {
		return fmt.Errorf("trainingdb: encode: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("trainingdb: compress: %w", err)
	}
	return nil
}

// Load reads a database written by Save.
func Load(r io.Reader) (*DB, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("trainingdb: decompress: %w", err)
	}
	defer zr.Close()
	dec := gob.NewDecoder(zr)
	var header string
	if err := dec.Decode(&header); err != nil {
		return nil, fmt.Errorf("trainingdb: decode header: %w", err)
	}
	if header != fileHeader {
		return nil, fmt.Errorf("trainingdb: bad header %q", header)
	}
	db := &DB{}
	if err := dec.Decode(db); err != nil {
		return nil, fmt.Errorf("trainingdb: decode: %w", err)
	}
	return db, nil
}

// SaveFile writes the database to path.
func SaveFile(path string, db *DB) error {
	fh, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trainingdb: %w", err)
	}
	if err := Save(fh, db); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}

// LoadFile reads a database from path.
func LoadFile(path string) (*DB, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("trainingdb: %w", err)
	}
	defer fh.Close()
	return Load(fh)
}
