package trainingdb

import (
	"fmt"
	"os"
	"sync"
)

// OpenCompiledFile loads a v2 artifact for serving: the file is
// memory-mapped read-only where the platform supports it (falling back
// to a plain read), the header and section table are validated, and
// the returned view aliases the mapping — matrix pages fault in on
// first access instead of at load. Section payload CRCs are NOT
// checked here (that would touch every page and defeat the lazy load);
// run `tdbtool verify` on artifacts that crossed a network or a
// questionable disk.
//
// close releases the mapping. It must not be called while the view —
// or any locator, snapshot or estimate still referencing its strings —
// is in use; the serving pattern is to close only after a replacement
// snapshot has been published and drained.
// Skeleton reconstructs the entry-level shape of the database the view
// was compiled from: names, positions and the BSSID universe, with
// empty per-AP statistics. It is what the HTTP layer's /locations and
// /healthz handlers and the name resolver need when a service is built
// from an artifact and the raw DB never existed in this process.
//
// The skeleton's strings alias the view's backing (for a decoded view,
// the memory mapping) — it shares the view's lifetime and must not
// outlive its close.
func (c *Compiled) Skeleton() *DB {
	db := &DB{
		Entries: make(map[string]*Entry, len(c.Names)),
		BSSIDs:  append([]string(nil), c.BSSIDs...),
	}
	for i, name := range c.Names {
		db.Entries[name] = &Entry{Name: name, Pos: c.Pos[i], PerAP: map[string]*APStats{}}
	}
	return db
}

func OpenCompiledFile(path string) (c *Compiled, close func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("trainingdb: open artifact: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("trainingdb: stat artifact: %w", err)
	}
	if st.Size() > int64(int(^uint(0)>>1)) {
		f.Close()
		return nil, nil, fmt.Errorf("trainingdb: artifact too large (%d bytes)", st.Size())
	}
	size := int(st.Size())
	if data, closer, ok := mapFile(f, size); ok {
		// The mapping outlives the descriptor.
		f.Close()
		c, err := DecodeCompiled(data, DecodeOptions{})
		if err != nil {
			closer()
			return nil, nil, err
		}
		return c, idempotentClose(closer), nil
	}
	data, err := os.ReadFile(path)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("trainingdb: read artifact: %w", err)
	}
	c, err = DecodeCompiled(data, DecodeOptions{})
	if err != nil {
		return nil, nil, err
	}
	return c, func() error { return nil }, nil
}

// idempotentClose makes a close func safe to call more than once:
// double-closing a munmap'd region would unmap whatever got remapped
// there in between, so every call after the first returns the first
// call's result without re-closing. The close funcs this package hands
// out flow through several owners (service, instance, venue registry,
// deferred cleanup on error paths) and the cheapest correct contract
// is that all of them may call it.
func idempotentClose(f func() error) func() error {
	var once sync.Once
	var err error
	return func() error {
		once.Do(func() { err = f() })
		return err
	}
}
