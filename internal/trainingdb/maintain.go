package trainingdb

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// PruneAPs removes, from every entry, APs with fewer than minSamples
// observations at that entry, then drops BSSIDs no longer referenced
// anywhere. Sparse sightings — a neighbour's AP caught twice during a
// survey — add noise to signal-space distances and are the first thing
// a deployment trims. It returns the number of ⟨entry, AP⟩ records
// removed.
func (db *DB) PruneAPs(minSamples int) int {
	removed := 0
	for _, e := range db.Entries {
		for bssid, s := range e.PerAP {
			if s.N < minSamples {
				delete(e.PerAP, bssid)
				removed++
			}
		}
	}
	db.rebuildBSSIDs()
	db.bumpGeneration()
	return removed
}

// RemoveEntry deletes a training location, returning false when it
// does not exist. BSSIDs referenced only by that entry disappear from
// the universe.
func (db *DB) RemoveEntry(name string) bool {
	if _, ok := db.Entries[name]; !ok {
		return false
	}
	delete(db.Entries, name)
	db.invalidateNames()
	db.rebuildBSSIDs()
	db.bumpGeneration()
	return true
}

// rebuildBSSIDs recomputes the sorted BSSID universe from the entries.
func (db *DB) rebuildBSSIDs() {
	set := make(map[string]bool)
	for _, e := range db.Entries {
		for bssid := range e.PerAP {
			set[bssid] = true
		}
	}
	db.BSSIDs = db.BSSIDs[:0]
	for b := range set {
		db.BSSIDs = append(db.BSSIDs, b)
	}
	sort.Strings(db.BSSIDs)
}

// Distinguishability returns, for each pair of training locations, the
// Euclidean distance between their mean signal vectors in dB (missing
// APs substituted with floor). Small values flag locations a
// fingerprinting localizer will confuse; surveys use this to decide
// where to add APs or training points. Keys are "nameA|nameB" with
// nameA < nameB.
func (db *DB) Distinguishability(floor float64) map[string]float64 {
	names := db.Names()
	out := make(map[string]float64, len(names)*(len(names)-1)/2)
	vecs := make(map[string][]float64, len(names))
	for _, n := range names {
		vecs[n] = db.Entries[n].MeanVector(db.BSSIDs, floor)
	}
	for i, a := range names {
		for _, b := range names[i+1:] {
			va, vb := vecs[a], vecs[b]
			sum := 0.0
			for k := range va {
				d := va[k] - vb[k]
				sum += d * d
			}
			out[a+"|"+b] = math.Sqrt(sum)
		}
	}
	return out
}

// jsonDB is the interoperability export shape: everything a non-Go
// consumer needs, with stable field names.
type jsonDB struct {
	Version int          `json:"version"`
	BSSIDs  []string     `json:"bssids"`
	Entries []*jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Name  string         `json:"name"`
	X     float64        `json:"x"`
	Y     float64        `json:"y"`
	PerAP []*jsonAPStats `json:"per_ap"`
}

type jsonAPStats struct {
	BSSID   string    `json:"bssid"`
	N       int       `json:"n"`
	Mean    float64   `json:"mean"`
	StdDev  float64   `json:"std_dev"`
	Min     float64   `json:"min"`
	Max     float64   `json:"max"`
	Samples []float64 `json:"samples,omitempty"`
}

// ExportJSON writes the database as stable, human-inspectable JSON —
// the interchange path for non-Go tooling. Set withSamples to include
// the raw sample arrays (large); statistics are always included.
func ExportJSON(w io.Writer, db *DB, withSamples bool) error {
	out := &jsonDB{Version: 1, BSSIDs: db.BSSIDs}
	for _, name := range db.Names() {
		e := db.Entries[name]
		je := &jsonEntry{Name: e.Name, X: e.Pos.X, Y: e.Pos.Y}
		bssids := make([]string, 0, len(e.PerAP))
		for b := range e.PerAP {
			bssids = append(bssids, b)
		}
		sort.Strings(bssids)
		for _, b := range bssids {
			s := e.PerAP[b]
			js := &jsonAPStats{
				BSSID: s.BSSID, N: s.N, Mean: s.Mean,
				StdDev: s.StdDev, Min: s.Min, Max: s.Max,
			}
			if withSamples {
				js.Samples = s.Samples
			}
			je.PerAP = append(je.PerAP, js)
		}
		out.Entries = append(out.Entries, je)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("trainingdb: export: %w", err)
	}
	return nil
}

// ImportJSON reads a database written by ExportJSON. Entries exported
// without samples round-trip with empty Samples slices; moment
// statistics survive either way.
func ImportJSON(r io.Reader) (*DB, error) {
	var in jsonDB
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("trainingdb: import: %w", err)
	}
	if in.Version != 1 {
		return nil, fmt.Errorf("trainingdb: unsupported export version %d", in.Version)
	}
	db := &DB{Entries: make(map[string]*Entry, len(in.Entries))}
	for _, je := range in.Entries {
		if je.Name == "" {
			return nil, fmt.Errorf("trainingdb: import: entry with empty name")
		}
		if _, dup := db.Entries[je.Name]; dup {
			return nil, fmt.Errorf("trainingdb: import: duplicate entry %q", je.Name)
		}
		e := &Entry{Name: je.Name, PerAP: make(map[string]*APStats, len(je.PerAP))}
		e.Pos.X, e.Pos.Y = je.X, je.Y
		for _, js := range je.PerAP {
			if js.BSSID == "" {
				return nil, fmt.Errorf("trainingdb: import: %q has AP with empty BSSID", je.Name)
			}
			e.PerAP[js.BSSID] = &APStats{
				BSSID: js.BSSID, N: js.N, Mean: js.Mean,
				StdDev: js.StdDev, Min: js.Min, Max: js.Max,
				Samples: js.Samples,
			}
		}
		db.Entries[je.Name] = e
	}
	db.rebuildBSSIDs()
	if db.Len() == 0 {
		return nil, ErrNoEntries
	}
	return db, nil
}
