package trainingdb

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/locmap"
	"indoorloc/internal/wiscan"
)

const (
	apA = "00:02:2d:00:00:0a"
	apB = "00:02:2d:00:00:0b"
)

func testCollection() *wiscan.Collection {
	mk := func(loc string, recs ...wiscan.Record) *wiscan.File {
		return &wiscan.File{Location: loc, Records: recs}
	}
	rec := func(t int64, bssid string, rssi int) wiscan.Record {
		return wiscan.Record{TimeMillis: t, BSSID: bssid, SSID: "house", Channel: 6, RSSI: rssi, Noise: -95}
	}
	return &wiscan.Collection{Files: map[string]*wiscan.File{
		"kitchen": mk("kitchen",
			rec(1000, apA, -60), rec(1000, apB, -75),
			rec(2000, apA, -62), rec(2000, apB, -73),
			rec(3000, apA, -61),
		),
		"hall": mk("hall",
			rec(1000, apA, -70), rec(2000, apA, -71),
		),
	}}
}

func testMap() *locmap.Map {
	m := locmap.New()
	m.Add("kitchen", geom.Pt(5, 35))
	m.Add("hall", geom.Pt(25, 20))
	return m
}

func TestGenerateBasic(t *testing.T) {
	db, skipped, err := Generate(testCollection(), testMap(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != nil {
		t.Errorf("skipped = %v", skipped)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	if got := db.Names(); got[0] != "hall" || got[1] != "kitchen" {
		t.Errorf("Names = %v", got)
	}
	if len(db.BSSIDs) != 2 || db.BSSIDs[0] != apA || db.BSSIDs[1] != apB {
		t.Errorf("BSSIDs = %v", db.BSSIDs)
	}
	k := db.Entries["kitchen"]
	if k.Pos != geom.Pt(5, 35) {
		t.Errorf("kitchen pos = %v", k.Pos)
	}
	sa := k.PerAP[apA]
	if sa.N != 3 || math.Abs(sa.Mean-(-61)) > 1e-12 {
		t.Errorf("kitchen/apA stats = %+v", sa)
	}
	if sa.Min != -62 || sa.Max != -60 {
		t.Errorf("kitchen/apA extrema = %v/%v", sa.Min, sa.Max)
	}
	if len(sa.Samples) != 3 {
		t.Errorf("samples = %v", sa.Samples)
	}
	if sa.StdDev <= 0 {
		t.Errorf("stddev = %v", sa.StdDev)
	}
	// hall never heard apB.
	if _, ok := db.Entries["hall"].PerAP[apB]; ok {
		t.Error("hall has phantom apB stats")
	}
	if db.TotalSamples() != 7 {
		t.Errorf("TotalSamples = %d", db.TotalSamples())
	}
}

func TestGenerateUnmapped(t *testing.T) {
	m := locmap.New()
	m.Add("kitchen", geom.Pt(5, 35)) // hall intentionally missing
	if _, _, err := Generate(testCollection(), m, Options{}); err == nil {
		t.Error("unmapped location accepted in strict mode")
	}
	db, skipped, err := Generate(testCollection(), m, Options{SkipUnmapped: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 1 || skipped[0] != "hall" {
		t.Errorf("skipped = %v", skipped)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
}

func TestGenerateEmpty(t *testing.T) {
	c := &wiscan.Collection{Files: map[string]*wiscan.File{}}
	if _, _, err := Generate(c, testMap(), Options{}); err != ErrNoEntries {
		t.Errorf("err = %v, want ErrNoEntries", err)
	}
}

func TestMeanVector(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	v := db.Entries["hall"].MeanVector(db.BSSIDs, -95)
	if math.Abs(v[0]-(-70.5)) > 1e-12 {
		t.Errorf("v[0] = %v", v[0])
	}
	if v[1] != -95 { // apB unheard at hall → default
		t.Errorf("v[1] = %v, want floor default", v[1])
	}
}

func TestNearestEntry(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	e, ok := db.NearestEntry(geom.Pt(6, 34))
	if !ok || e.Name != "kitchen" {
		t.Errorf("NearestEntry = %v %v", e, ok)
	}
	e, ok = db.NearestEntry(geom.Pt(26, 19))
	if !ok || e.Name != "hall" {
		t.Errorf("NearestEntry = %v %v", e, ok)
	}
	empty := &DB{Entries: map[string]*Entry{}}
	if _, ok := empty.NearestEntry(geom.Pt(0, 0)); ok {
		t.Error("empty DB returned an entry")
	}
}

func TestMerge(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	other := &DB{
		Entries: map[string]*Entry{
			"porch": {Name: "porch", Pos: geom.Pt(0, 0), PerAP: map[string]*APStats{
				"new:ap": {BSSID: "new:ap", N: 1, Mean: -80, Samples: []float64{-80}},
			}},
		},
		BSSIDs: []string{"new:ap"},
	}
	if err := db.Merge(other); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Errorf("Len = %d", db.Len())
	}
	if len(db.BSSIDs) != 3 || db.BSSIDs[2] != "new:ap" {
		t.Errorf("BSSIDs = %v", db.BSSIDs)
	}
	// Collision detection.
	dup := &DB{Entries: map[string]*Entry{"kitchen": {Name: "kitchen"}}}
	if err := db.Merge(dup); err == nil {
		t.Error("merge collision accepted")
	}
}

func TestDistanceSamples(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	apPos := geom.Pt(0, 0)
	dists, rssis := db.DistanceSamples(apA, apPos)
	if len(dists) != 5 || len(rssis) != 5 {
		t.Fatalf("got %d/%d samples", len(dists), len(rssis))
	}
	// hall sorts first: distance from (25,20) to origin.
	wantHall := math.Hypot(25, 20)
	if math.Abs(dists[0]-wantHall) > 1e-12 {
		t.Errorf("dists[0] = %v, want %v", dists[0], wantHall)
	}
	if rssis[0] != -70 {
		t.Errorf("rssis[0] = %v", rssis[0])
	}
	// Unknown AP yields nothing.
	d, r := db.DistanceSamples("nope", apPos)
	if d != nil || r != nil {
		t.Error("unknown AP returned samples")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() || len(back.BSSIDs) != len(db.BSSIDs) {
		t.Fatal("shape mismatch after round trip")
	}
	for name, e := range db.Entries {
		be := back.Entries[name]
		if be == nil || be.Pos != e.Pos {
			t.Fatalf("entry %s mismatch", name)
		}
		for b, s := range e.PerAP {
			bs := be.PerAP[b]
			if bs == nil || bs.N != s.N || bs.Mean != s.Mean || bs.StdDev != s.StdDev {
				t.Errorf("%s/%s stats mismatch", name, b)
			}
			if len(bs.Samples) != len(s.Samples) {
				t.Errorf("%s/%s samples mismatch", name, b)
			}
		}
	}
}

func TestSaveCompresses(t *testing.T) {
	// The paper's selling point: databases are compressed. A DB with
	// many repeated samples must encode smaller than its raw float size.
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	big := db.Entries["kitchen"].PerAP[apA]
	for i := 0; i < 10000; i++ {
		big.Samples = append(big.Samples, -61)
	}
	big.N = len(big.Samples)
	var buf bytes.Buffer
	if err := Save(&buf, db); err != nil {
		t.Fatal(err)
	}
	if buf.Len() > 8*10000/4 {
		t.Errorf("compressed size %d bytes; compression looks broken", buf.Len())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not gzip at all")); err == nil {
		t.Error("garbage accepted")
	}
	// Valid gzip, wrong payload.
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	zw.Write([]byte("hello, not a gob stream"))
	zw.Close()
	if _, err := Load(&buf); err == nil {
		t.Error("non-gob gzip accepted")
	}
	// Valid gob under gzip but wrong header string.
	buf.Reset()
	zw = gzip.NewWriter(&buf)
	enc := gob.NewEncoder(zw)
	enc.Encode("some-other-format")
	zw.Close()
	if _, err := Load(&buf); err == nil {
		t.Error("wrong header accepted")
	}
}

func TestFileRoundTrip(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	path := filepath.Join(t.TempDir(), "train.tdb")
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() {
		t.Error("file round trip lost entries")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.tdb")); err == nil {
		t.Error("missing file accepted")
	}
}
