package trainingdb

import (
	"math"
	"sort"

	"indoorloc/internal/geom"
)

// This file holds the live-training primitives: streaming one
// crowdsourced observation into the per-⟨entry, AP⟩ statistics
// (AddSample/Fold) and producing immutable copy-on-write views of the
// database (Clone/Snapshot) so a compactor can keep folding while a
// published snapshot serves queries.

// AddSample folds one more RSSI reading into the statistics using
// Welford's streaming update, so the stored Mean/StdDev after n+1
// samples equal (up to float rounding through the σ→m2→σ round trip)
// what Generate would have computed from the full sample list. The raw
// sample is appended so distribution-aware methods (histogram,
// staleness KS tests) keep seeing the full distribution.
func (s *APStats) AddSample(v float64) {
	// Recover the second central moment from the stored unbiased σ.
	var m2 float64
	if s.N > 1 {
		m2 = s.StdDev * s.StdDev * float64(s.N-1)
	}
	if s.N == 0 {
		s.Min, s.Max = v, v
	} else {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.N++
	delta := v - s.Mean
	s.Mean += delta / float64(s.N)
	m2 += delta * (v - s.Mean)
	if s.N > 1 {
		s.StdDev = math.Sqrt(m2 / float64(s.N-1))
	} else {
		s.StdDev = 0
	}
	s.Samples = append(s.Samples, v)
}

// Fold streams one observation (BSSID → RSSI) into the training
// location name, creating the entry at pos when it does not exist yet
// (an existing entry keeps its surveyed position; pos is ignored).
// Each reading counts as one training sample for its AP. BSSIDs new to
// the universe are inserted in sorted position. Fold bumps the
// generation: compiled views built before it are stale afterwards.
func (db *DB) Fold(name string, pos geom.Point, obs map[string]float64) {
	e := db.Entries[name]
	if e == nil {
		e = &Entry{Name: name, Pos: pos, PerAP: make(map[string]*APStats, len(obs))}
		if db.Entries == nil {
			db.Entries = make(map[string]*Entry)
		}
		db.Entries[name] = e
		db.invalidateNames()
	}
	for b, v := range obs {
		s := e.PerAP[b]
		if s == nil {
			s = &APStats{BSSID: b}
			e.PerAP[b] = s
			if i := sort.SearchStrings(db.BSSIDs, b); i == len(db.BSSIDs) || db.BSSIDs[i] != b {
				db.BSSIDs = append(db.BSSIDs, "")
				copy(db.BSSIDs[i+1:], db.BSSIDs[i:])
				db.BSSIDs[i] = b
			}
		}
		s.AddSample(v)
	}
	db.bumpGeneration()
}

// Clone deep-copies the entry: the statistics structs and their sample
// slices are fresh, so mutating the clone never disturbs readers of
// the original. This is the copy half of the ingest compactor's
// copy-on-write: entries referenced by a published snapshot are cloned
// before the next fold touches them.
func (e *Entry) Clone() *Entry {
	ne := &Entry{Name: e.Name, Pos: e.Pos, PerAP: make(map[string]*APStats, len(e.PerAP))}
	for b, s := range e.PerAP {
		cs := *s
		cs.Samples = append([]float64(nil), s.Samples...)
		ne.PerAP[b] = &cs
	}
	return ne
}

// Snapshot returns a shallow copy of the database: a fresh Entries map
// and BSSIDs slice holding the same *Entry pointers, carrying the
// current generation. The copy is cheap — O(entries), no statistics
// are duplicated — and is safe to publish as an immutable view
// provided the owner follows the copy-on-write discipline: after
// snapshotting, Clone any shared entry before mutating it (the ingest
// compactor does exactly this). Structural mutations on the original
// (new entries, new BSSIDs, removals) never affect the snapshot, since
// the map and slice are copies.
func (db *DB) Snapshot() *DB {
	nd := &DB{
		Entries: make(map[string]*Entry, len(db.Entries)),
		BSSIDs:  append([]string(nil), db.BSSIDs...),
		gen:     db.gen,
	}
	for n, e := range db.Entries {
		nd.Entries[n] = e
	}
	return nd
}
