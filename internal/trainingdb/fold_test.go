package trainingdb

import (
	"math"
	"sort"
	"testing"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

// TestAddSampleMatchesBatchStats checks that streaming samples one at
// a time through AddSample lands on the same moments Generate computes
// from the full list.
func TestAddSampleMatchesBatchStats(t *testing.T) {
	samples := []float64{-61, -63.5, -60, -71, -64, -64, -58.25, -66, -90, -62}
	s := &APStats{BSSID: "aa"}
	var r stats.Running
	for i, v := range samples {
		s.AddSample(v)
		r.Add(v)
		if s.N != i+1 {
			t.Fatalf("after %d adds: N=%d", i+1, s.N)
		}
		if math.Abs(s.Mean-r.Mean()) > 1e-9 {
			t.Errorf("after %d adds: mean %v want %v", i+1, s.Mean, r.Mean())
		}
		if math.Abs(s.StdDev-r.StdDev()) > 1e-9 {
			t.Errorf("after %d adds: stddev %v want %v", i+1, s.StdDev, r.StdDev())
		}
		if s.Min != r.Min() || s.Max != r.Max() {
			t.Errorf("after %d adds: min/max %v/%v want %v/%v", i+1, s.Min, s.Max, r.Min(), r.Max())
		}
	}
	if len(s.Samples) != len(samples) {
		t.Errorf("samples kept: %d want %d", len(s.Samples), len(samples))
	}
}

// TestAddSampleResumesStoredStats verifies Welford resumption from
// stats that were stored (σ round-tripped through the struct), the
// ingest case: a DB loaded from disk keeps folding where it left off.
func TestAddSampleResumesStoredStats(t *testing.T) {
	first := []float64{-60, -62, -64, -61}
	rest := []float64{-63, -59.5, -70}
	var r stats.Running
	r.AddAll(first)
	s := &APStats{BSSID: "aa", N: r.N(), Mean: r.Mean(), StdDev: r.StdDev(), Min: r.Min(), Max: r.Max()}
	for _, v := range rest {
		s.AddSample(v)
		r.Add(v)
	}
	if math.Abs(s.Mean-r.Mean()) > 1e-9 || math.Abs(s.StdDev-r.StdDev()) > 1e-9 {
		t.Errorf("resumed fold: mean/sd %v/%v want %v/%v", s.Mean, s.StdDev, r.Mean(), r.StdDev())
	}
}

func foldFixture() *DB {
	db := &DB{Entries: map[string]*Entry{
		"a": {Name: "a", Pos: geom.Point{X: 1, Y: 1}, PerAP: map[string]*APStats{
			"ap1": {BSSID: "ap1", N: 2, Mean: -60, StdDev: 1, Min: -61, Max: -59, Samples: []float64{-61, -59}},
		}},
	}, BSSIDs: []string{"ap1"}}
	return db
}

func TestFoldExistingEntry(t *testing.T) {
	db := foldFixture()
	gen := db.Generation()
	db.Fold("a", geom.Point{X: 9, Y: 9}, map[string]float64{"ap1": -63, "ap2": -80})
	if db.Generation() != gen+1 {
		t.Errorf("generation %d want %d", db.Generation(), gen+1)
	}
	e := db.Entries["a"]
	if e.Pos != (geom.Point{X: 1, Y: 1}) {
		t.Errorf("existing entry moved to %v", e.Pos)
	}
	if s := e.PerAP["ap1"]; s.N != 3 {
		t.Errorf("ap1 N=%d want 3", s.N)
	}
	if s := e.PerAP["ap2"]; s == nil || s.N != 1 || s.Mean != -80 {
		t.Errorf("ap2 stats %+v", e.PerAP["ap2"])
	}
	if want := []string{"ap1", "ap2"}; !equalStrings(db.BSSIDs, want) {
		t.Errorf("BSSIDs %v want %v", db.BSSIDs, want)
	}
}

func TestFoldNewEntryAndSortedUniverse(t *testing.T) {
	db := foldFixture()
	db.Fold("b", geom.Point{X: 5, Y: 5}, map[string]float64{"ap0": -70})
	if e := db.Entries["b"]; e == nil || e.Pos != (geom.Point{X: 5, Y: 5}) {
		t.Fatalf("new entry %+v", db.Entries["b"])
	}
	if !sort.StringsAreSorted(db.BSSIDs) {
		t.Errorf("BSSIDs not sorted: %v", db.BSSIDs)
	}
	if want := []string{"ap0", "ap1"}; !equalStrings(db.BSSIDs, want) {
		t.Errorf("BSSIDs %v want %v", db.BSSIDs, want)
	}
	// The sorted-name cache must include the new entry.
	if names := db.Names(); !equalStrings(names, []string{"a", "b"}) {
		t.Errorf("Names %v", names)
	}
}

// TestGenerationBumps pins the satellite contract: every mutator moves
// the counter.
func TestGenerationBumps(t *testing.T) {
	db := foldFixture()
	if db.Generation() != 0 {
		t.Fatalf("fresh DB at generation %d", db.Generation())
	}
	other := &DB{Entries: map[string]*Entry{
		"z": {Name: "z", PerAP: map[string]*APStats{"ap9": {BSSID: "ap9", N: 1, Mean: -50}}},
	}, BSSIDs: []string{"ap9"}}
	if err := db.Merge(other); err != nil {
		t.Fatal(err)
	}
	if db.Generation() != 1 {
		t.Errorf("after Merge: generation %d want 1", db.Generation())
	}
	db.PruneAPs(2)
	if db.Generation() != 2 {
		t.Errorf("after PruneAPs: generation %d want 2", db.Generation())
	}
	if !db.RemoveEntry("z") {
		t.Fatal("RemoveEntry failed")
	}
	if db.Generation() != 3 {
		t.Errorf("after RemoveEntry: generation %d want 3", db.Generation())
	}
	db.Fold("a", geom.Point{}, map[string]float64{"ap1": -60})
	if db.Generation() != 4 {
		t.Errorf("after Fold: generation %d want 4", db.Generation())
	}
}

// TestCompiledStaleAfterMutation is the regression test for the
// stale-compiled hazard: before generations, mutating the DB after a
// locator compiled its matrices was silently invisible. Now the view
// knows its generation and mutation-after-build is detectable.
func TestCompiledStaleAfterMutation(t *testing.T) {
	db := foldFixture()
	c := db.Compile(-95, 4)
	if c.Stale(db) {
		t.Fatal("fresh view already stale")
	}
	db.Fold("a", geom.Point{}, map[string]float64{"ap1": -59})
	if !c.Stale(db) {
		t.Error("Fold after Compile not detected as stale")
	}
	c2 := db.Compile(-95, 4)
	if c2.Stale(db) {
		t.Error("recompiled view reported stale")
	}
	if !db.RemoveEntry("a") {
		t.Fatal("RemoveEntry failed")
	}
	if !c2.Stale(db) {
		t.Error("RemoveEntry after Compile not detected as stale")
	}
}

func TestCloneIsDeep(t *testing.T) {
	db := foldFixture()
	orig := db.Entries["a"]
	cl := orig.Clone()
	cl.PerAP["ap1"].AddSample(-10)
	cl.PerAP["apX"] = &APStats{BSSID: "apX", N: 1}
	if orig.PerAP["ap1"].N != 2 || len(orig.PerAP["ap1"].Samples) != 2 {
		t.Errorf("clone mutation leaked into original: %+v", orig.PerAP["ap1"])
	}
	if _, ok := orig.PerAP["apX"]; ok {
		t.Error("clone map shared with original")
	}
}

// TestSnapshotCopyOnWrite drives the compactor discipline end to end:
// snapshot, clone-before-mutate, fold, and check the published view
// never moves.
func TestSnapshotCopyOnWrite(t *testing.T) {
	db := foldFixture()
	snap := db.Snapshot()
	if snap.Generation() != db.Generation() {
		t.Errorf("snapshot generation %d want %d", snap.Generation(), db.Generation())
	}
	// COW: entry "a" is shared with the snapshot, so clone before fold.
	db.Entries["a"] = db.Entries["a"].Clone()
	db.Fold("a", geom.Point{}, map[string]float64{"ap1": -40, "apZ": -50})
	db.Fold("new", geom.Point{X: 2, Y: 2}, map[string]float64{"apZ": -55})

	if s := snap.Entries["a"].PerAP["ap1"]; s.N != 2 || s.Max != -59 {
		t.Errorf("snapshot entry mutated: %+v", s)
	}
	if _, ok := snap.Entries["new"]; ok {
		t.Error("snapshot gained a structural entry")
	}
	if !equalStrings(snap.BSSIDs, []string{"ap1"}) {
		t.Errorf("snapshot BSSIDs mutated: %v", snap.BSSIDs)
	}
	if snap.Generation() == db.Generation() {
		t.Error("master generation did not advance past snapshot")
	}
	// The snapshot still compiles and answers from the old world.
	c := snap.Compile(-95, 4)
	if got := len(c.Names); got != 1 {
		t.Errorf("snapshot compiled %d entries want 1", got)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
