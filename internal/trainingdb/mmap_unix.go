//go:build unix

package trainingdb

import (
	"os"
	"syscall"
)

// mapFile maps size bytes of f read-only and shared, so every process
// serving the same artifact shares one page-cache copy. ok is false
// when the platform cannot map (empty file, exotic fs) and the caller
// should fall back to reading.
func mapFile(f *os.File, size int) (data []byte, closer func() error, ok bool) {
	if size <= 0 {
		return nil, nil, false
	}
	m, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, false
	}
	return m, func() error { return syscall.Munmap(m) }, true
}
