package trainingdb

// Quantized radio-map matrices. RSSI has roughly 1 dBm of native
// resolution (receivers report integer dBm), so carrying the per-cell
// statistics as float64 spends 8× the memory bandwidth the scoring
// scan is bound by. Quantize compresses each per-cell matrix to int16
// codes under a per-AP affine map
//
//	value = Off[j] + Scale[j]·code
//
// chosen so the codes span each AP column's own value range: the
// worst-case dequantization error is (max−min)/2·QuantLevels per
// column, around 7·10⁻⁴ dB for a 90 dB RSSI column — three orders of
// magnitude below the sensor's resolution. Scoring loops dequantize on
// the fly and keep float64 accumulators, so results stay within the
// tolerance of the equivalence property tests while the scan moves 4×
// less matrix data (16 bytes per visited cell down to 4, plus the
// shared per-AP factors that stay resident in cache).

// QuantLevels is the number of code steps an int16 column spans: codes
// lie in [−QuantLevels/2, QuantLevels/2].
const QuantLevels = 65534

// Quant is the int16-quantized mirror of a Compiled view's per-cell
// matrices. Like the float64 matrices it shadows, it is entry-major
// (cell i·nAP+j) and immutable after construction.
type Quant struct {
	// Per-cell codes for the four matrices.
	MeanQ, SigmaQ, LogNormQ, FloorLLQ []int16

	// Per-AP dequantization factors, indexed by column:
	// value = Off[j] + Scale[j]·float64(code). A constant column has
	// Scale 0 and reproduces its value exactly through Off.
	MeanScale, MeanOff       []float64
	SigmaScale, SigmaOff     []float64
	LogNormScale, LogNormOff []float64
	FloorLLScale, FloorLLOff []float64

	// UnheardLL and SignalBase are the per-entry scan baselines
	// recomputed from the *dequantized* cells, so the quantized scorers'
	// baseline+correction algebra is exact over the quantized matrices:
	// the only divergence from the float64 path is the per-cell
	// dequantization error itself, never an inconsistent baseline.
	UnheardLL  []float64
	SignalBase []float64
}

// quantizeColumns fills codes/scale/off for one matrix: column j's
// codes reproduce src values within half a step of the column's range.
// src is entry-major with nAP columns.
func quantizeColumns(src []float64, nE, nAP int, codes []int16, scale, off []float64) {
	for j := 0; j < nAP; j++ {
		lo, hi := src[j], src[j]
		for i := 1; i < nE; i++ {
			v := src[i*nAP+j]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		mid := (lo + hi) / 2
		step := (hi - lo) / QuantLevels
		off[j], scale[j] = mid, step
		if step == 0 {
			continue // constant column: codes stay 0, Off carries the value
		}
		inv := 1 / step
		for i := 0; i < nE; i++ {
			cell := i*nAP + j
			q := (src[cell] - mid) * inv
			// Round to nearest; the range construction keeps q within
			// ±(QuantLevels/2 + ½), inside int16.
			if q >= 0 {
				codes[cell] = int16(q + 0.5)
			} else {
				codes[cell] = int16(q - 0.5)
			}
		}
	}
}

// Dequant returns Off + Scale·code — the scoring loops inline this.
func dequant(code int16, scale, off float64) float64 {
	return off + scale*float64(code)
}

// Quantize builds (once) the int16-quantized mirror of the view's
// matrices and returns it. The float64 matrices are left in place; call
// ReleaseFloat64 afterwards to drop them when only quantized scoring
// will run. Quantize is not safe to race with concurrent readers of
// the view — quantize before publishing it, the way Compile runs
// before first use.
func (c *Compiled) Quantize() *Quant {
	if c.Quant != nil {
		return c.Quant
	}
	nE, nAP := len(c.Names), len(c.BSSIDs)
	cells := nE * nAP
	q := &Quant{
		MeanQ: make([]int16, cells), SigmaQ: make([]int16, cells),
		LogNormQ: make([]int16, cells), FloorLLQ: make([]int16, cells),
		MeanScale: make([]float64, nAP), MeanOff: make([]float64, nAP),
		SigmaScale: make([]float64, nAP), SigmaOff: make([]float64, nAP),
		LogNormScale: make([]float64, nAP), LogNormOff: make([]float64, nAP),
		FloorLLScale: make([]float64, nAP), FloorLLOff: make([]float64, nAP),
		UnheardLL:  make([]float64, nE),
		SignalBase: make([]float64, nE),
	}
	if nE > 0 && nAP > 0 {
		quantizeColumns(c.Mean, nE, nAP, q.MeanQ, q.MeanScale, q.MeanOff)
		quantizeColumns(c.Sigma, nE, nAP, q.SigmaQ, q.SigmaScale, q.SigmaOff)
		quantizeColumns(c.LogNorm, nE, nAP, q.LogNormQ, q.LogNormScale, q.LogNormOff)
		quantizeColumns(c.FloorLL, nE, nAP, q.FloorLLQ, q.FloorLLScale, q.FloorLLOff)
	}
	// Rebuild the per-entry baselines from the dequantized cells (see
	// the Quant field comment). Untrained cells hold the floor level in
	// Mean, so their dequantized floor distance is near — but not
	// exactly — zero; summing it here keeps the correction subtraction
	// in the kNN scan exact.
	for i := 0; i < nE; i++ {
		base := i * nAP
		var unheard, sigBase float64
		for j := 0; j < nAP; j++ {
			cell := base + j
			if c.Trained[cell] {
				unheard += dequant(q.FloorLLQ[cell], q.FloorLLScale[j], q.FloorLLOff[j])
			}
			d := c.FloorRSSI - dequant(q.MeanQ[cell], q.MeanScale[j], q.MeanOff[j])
			sigBase += d * d
		}
		q.UnheardLL[i] = unheard
		q.SignalBase[i] = sigBase
	}
	c.Quant = q
	return q
}

// ReleaseFloat64 drops the float64 per-cell matrices, keeping only the
// quantized mirror — the 4× matrix-footprint win of format v2. It is a
// no-op until Quantize has run (the view must stay scoreable). The
// per-entry vectors, Trained, and N stay: they are small and the
// quantized scorers still read them.
func (c *Compiled) ReleaseFloat64() {
	if c.Quant == nil {
		return
	}
	c.Mean, c.Sigma, c.LogNorm, c.FloorLL = nil, nil, nil, nil
}

// MatrixBytes reports the resident footprint of the per-cell matrices
// the view currently holds — the number the v2 format's RSS claim is
// measured on. Per-entry vectors and the name/BSSID tables are excluded
// (they are O(entries+APs), not O(entries×APs)).
func (c *Compiled) MatrixBytes() int {
	cells := len(c.Trained)
	n := cells * (1 + 4) // Trained []bool + N []int32
	n += (len(c.Mean) + len(c.Sigma) + len(c.LogNorm) + len(c.FloorLL)) * 8
	if q := c.Quant; q != nil {
		n += (len(q.MeanQ) + len(q.SigmaQ) + len(q.LogNormQ) + len(q.FloorLLQ)) * 2
	}
	return n
}
