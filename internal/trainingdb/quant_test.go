package trainingdb

import (
	"math"
	"math/rand"
	"testing"
)

// maxQuantErr is the worst per-cell dequantization error the affine
// scheme admits for a column spanning spread: half a code step.
func maxQuantErr(spread float64) float64 { return spread / (2 * QuantLevels) }

func TestQuantizeRoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nE, nAP := 120, 9
	src := make([]float64, nE*nAP)
	spreads := make([]float64, nAP)
	for j := 0; j < nAP; j++ {
		center := -90 + 70*rng.Float64()
		spread := 1 + 89*rng.Float64()
		spreads[j] = spread
		for i := 0; i < nE; i++ {
			src[i*nAP+j] = center + spread*(rng.Float64()-0.5)
		}
	}
	codes := make([]int16, nE*nAP)
	scale := make([]float64, nAP)
	off := make([]float64, nAP)
	quantizeColumns(src, nE, nAP, codes, scale, off)
	for j := 0; j < nAP; j++ {
		// The realised column range can only be narrower than spread.
		bound := maxQuantErr(spreads[j]) * (1 + 1e-9)
		for i := 0; i < nE; i++ {
			cell := i*nAP + j
			got := dequant(codes[cell], scale[j], off[j])
			if d := math.Abs(got - src[cell]); d > bound {
				t.Fatalf("cell (%d,%d): |%v − %v| = %v > %v",
					i, j, got, src[cell], d, bound)
			}
		}
	}
}

func TestQuantizeConstantColumnExact(t *testing.T) {
	nE, nAP := 5, 2
	src := make([]float64, nE*nAP)
	for i := 0; i < nE; i++ {
		src[i*nAP] = -63.25 // constant column 0
		src[i*nAP+1] = float64(i)
	}
	codes := make([]int16, nE*nAP)
	scale := make([]float64, nAP)
	off := make([]float64, nAP)
	quantizeColumns(src, nE, nAP, codes, scale, off)
	if scale[0] != 0 {
		t.Errorf("constant column scale = %v, want 0", scale[0])
	}
	for i := 0; i < nE; i++ {
		if got := dequant(codes[i*nAP], scale[0], off[0]); got != -63.25 {
			t.Errorf("constant column cell %d = %v, want exact -63.25", i, got)
		}
	}
}

func TestCompiledQuantize(t *testing.T) {
	db := compiledFixture()
	c := db.Compile(-95, 4)
	q := c.Quantize()
	if q == nil || c.Quant != q {
		t.Fatal("Quantize did not install the mirror")
	}
	if c.Quantize() != q {
		t.Error("Quantize is not idempotent")
	}

	nE, nAP := c.NumEntries(), c.NumAPs()
	// Every dequantized cell is within half a step of its column range.
	check := func(name string, src []float64, codes []int16, scale, off []float64) {
		for j := 0; j < nAP; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for i := 0; i < nE; i++ {
				v := src[i*nAP+j]
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			bound := maxQuantErr(hi-lo) * (1 + 1e-9)
			for i := 0; i < nE; i++ {
				cell := i*nAP + j
				got := dequant(codes[cell], scale[j], off[j])
				if d := math.Abs(got - src[cell]); d > bound {
					t.Errorf("%s cell (%d,%d): err %v > %v", name, i, j, d, bound)
				}
			}
		}
	}
	check("Mean", c.Mean, q.MeanQ, q.MeanScale, q.MeanOff)
	check("Sigma", c.Sigma, q.SigmaQ, q.SigmaScale, q.SigmaOff)
	check("LogNorm", c.LogNorm, q.LogNormQ, q.LogNormScale, q.LogNormOff)
	check("FloorLL", c.FloorLL, q.FloorLLQ, q.FloorLLScale, q.FloorLLOff)

	// Baselines are sums of the dequantized cells, not of the float64
	// originals — the invariant the quantized scan's algebra relies on.
	for i := 0; i < nE; i++ {
		var unheard, sigBase float64
		for j := 0; j < nAP; j++ {
			cell := i*nAP + j
			if c.Trained[cell] {
				unheard += dequant(q.FloorLLQ[cell], q.FloorLLScale[j], q.FloorLLOff[j])
			}
			d := c.FloorRSSI - dequant(q.MeanQ[cell], q.MeanScale[j], q.MeanOff[j])
			sigBase += d * d
		}
		if math.Abs(q.UnheardLL[i]-unheard) > 1e-12 {
			t.Errorf("UnheardLL[%d] = %v, want %v", i, q.UnheardLL[i], unheard)
		}
		if math.Abs(q.SignalBase[i]-sigBase) > 1e-12 {
			t.Errorf("SignalBase[%d] = %v, want %v", i, q.SignalBase[i], sigBase)
		}
	}
}

func TestReleaseFloat64(t *testing.T) {
	db := compiledFixture()
	c := db.Compile(-95, 4)

	// Before quantization the float64 matrices must survive.
	c.ReleaseFloat64()
	if c.Mean == nil {
		t.Fatal("ReleaseFloat64 dropped matrices with no quantized mirror")
	}

	full := c.MatrixBytes()
	c.Quantize()
	both := c.MatrixBytes()
	if both <= full {
		t.Errorf("MatrixBytes after Quantize = %d, want > %d", both, full)
	}
	c.ReleaseFloat64()
	if c.Mean != nil || c.Sigma != nil || c.LogNorm != nil || c.FloorLL != nil {
		t.Error("float64 matrices survived ReleaseFloat64")
	}
	if c.Trained == nil || c.N == nil {
		t.Error("ReleaseFloat64 dropped Trained/N")
	}
	released := c.MatrixBytes()
	// 4 matrices × 8B → 4 × 2B: the per-cell payload shrinks 4×.
	cells := len(c.Trained)
	if want := cells*(1+4) + cells*4*2; released != want {
		t.Errorf("MatrixBytes after release = %d, want %d", released, want)
	}
}
