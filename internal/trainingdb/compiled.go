package trainingdb

import (
	"math"

	"indoorloc/internal/geom"
	"indoorloc/internal/stats"
)

// Compiled is a dense, read-only view of a DB built for the
// localization hot path. Where the DB stores per-entry statistics in
// string-keyed maps, the compiled view interns every BSSID to a dense
// column index and lays the per-⟨entry, AP⟩ statistics out in flat
// entry-major matrices, so a scoring loop is a linear scan with zero
// map lookups, zero sorting, and zero per-call log/sqrt work for the
// terms that do not depend on the observation.
//
// Radio-map systems (RADAR and its descendants) assume exactly this
// representation: the radio map is a matrix scanned per query, not a
// hash-map walk. The toolkit's Locator implementations compile the DB
// once — lazily on first Locate or eagerly via their Warm method — and
// score every subsequent observation against the matrices.
//
// A Compiled view is immutable after construction and therefore safe
// for unsynchronised concurrent reads. It is a snapshot: mutating the
// source DB (Merge, PruneAPs, RemoveEntry, Fold) does not update it.
// The view records the DB generation it was compiled from; Stale
// detects mutation-after-build, and the ingest compactor recompiles
// and hot-swaps a fresh view whenever the generation moves.
type Compiled struct {
	// Generation is the source DB's mutation counter at compile time.
	Generation uint64

	// FloorRSSI and FloorSigma are the floor-model parameters the view
	// was compiled with: the substitute level and spread for APs present
	// on one side (observation or training entry) but not the other.
	// FloorSigma is clamped to stats.MinSigma.
	FloorRSSI  float64
	FloorSigma float64

	// Names holds the entry names, sorted; Pos is parallel to it.
	Names []string
	Pos   []geom.Point
	// BSSIDs is the sorted AP universe; column j of every matrix row is
	// BSSIDs[j].
	BSSIDs []string

	// The matrices below are flat and entry-major: the cell for entry i
	// and AP column j is at index i*len(BSSIDs)+j.

	// Trained reports whether the entry heard the AP during training.
	Trained []bool
	// N is the per-cell training sample count (0 when untrained).
	// int32 keeps the matrix mmap-able and halves its footprint; a
	// single ⟨entry, AP⟩ cell never approaches 2³¹ samples.
	N []int32
	// Mean is the trained mean RSSI; untrained cells hold FloorRSSI so
	// signal-distance loops read one value without branching.
	Mean []float64
	// Sigma is the trained standard deviation clamped to
	// stats.MinSigma; untrained cells hold FloorSigma.
	Sigma []float64
	// LogNorm is the Gaussian log-normalisation term −log σ − ½·log 2π,
	// precomputed so the per-observation likelihood is one subtraction,
	// one multiply and one add per cell.
	LogNorm []float64
	// FloorLL is the precomputed floor-model log-likelihood
	// LogGaussianPDF(FloorRSSI, Mean, Sigma) for trained cells — the
	// "trained but not heard" score — and 0 for untrained cells.
	FloorLL []float64

	// UnheardLL is the per-entry log-likelihood of hearing nothing at
	// all: the sum of FloorLL over the entry's trained cells. Scoring an
	// observation starts from this baseline and corrects only the heard
	// columns, making the scan O(entries × heard APs) instead of
	// O(entries × universe).
	UnheardLL []float64
	// SignalBase is the per-entry squared signal distance of the
	// all-floor observation: the sum of (FloorRSSI−Mean)² over trained
	// cells. The kNN family applies per-heard-column corrections to it.
	SignalBase []float64

	// Quant is the int16-quantized mirror of the four matrices above,
	// built by Quantize (or loaded from a v2 artifact, in which case the
	// float64 matrices may be nil). Scorers prefer it when present.
	Quant *Quant

	apIndex map[string]int
	// backing pins the byte region a decoded view's slices and strings
	// alias (a memory mapping or the decode input); nil for views built
	// by Compile.
	backing []byte
}

// Compile builds the dense view of the database under the given
// floor-model parameters. floorSigma below stats.MinSigma is raised to
// it. The view snapshots the DB: later DB mutations are not reflected.
func (db *DB) Compile(floorRSSI, floorSigma float64) *Compiled {
	if floorSigma < stats.MinSigma {
		floorSigma = stats.MinSigma
	}
	names := db.Names()
	nE, nAP := len(names), len(db.BSSIDs)
	c := &Compiled{
		Generation: db.gen,
		FloorRSSI:  floorRSSI,
		FloorSigma: floorSigma,
		Names:      append([]string(nil), names...),
		Pos:        make([]geom.Point, nE),
		BSSIDs:     append([]string(nil), db.BSSIDs...),
		Trained:    make([]bool, nE*nAP),
		N:          make([]int32, nE*nAP),
		Mean:       make([]float64, nE*nAP),
		Sigma:      make([]float64, nE*nAP),
		LogNorm:    make([]float64, nE*nAP),
		FloorLL:    make([]float64, nE*nAP),
		UnheardLL:  make([]float64, nE),
		SignalBase: make([]float64, nE),
		apIndex:    make(map[string]int, nAP),
	}
	for j, b := range c.BSSIDs {
		c.apIndex[b] = j
	}
	halfLog2Pi := 0.5 * math.Log(2*math.Pi)
	for i, name := range c.Names {
		e := db.Entries[name]
		c.Pos[i] = e.Pos
		base := i * nAP
		for j, b := range c.BSSIDs {
			cell := base + j
			s, ok := e.PerAP[b]
			if !ok {
				c.Mean[cell] = floorRSSI
				c.Sigma[cell] = floorSigma
				continue
			}
			sigma := s.StdDev
			if sigma < stats.MinSigma {
				sigma = stats.MinSigma
			}
			c.Trained[cell] = true
			c.N[cell] = int32(s.N)
			c.Mean[cell] = s.Mean
			c.Sigma[cell] = sigma
			c.LogNorm[cell] = -math.Log(sigma) - halfLog2Pi
			c.FloorLL[cell] = stats.LogGaussianPDF(floorRSSI, s.Mean, s.StdDev)
			c.UnheardLL[i] += c.FloorLL[cell]
			d := floorRSSI - s.Mean
			c.SignalBase[i] += d * d
		}
	}
	return c
}

// Stale reports whether db has mutated since the view was compiled —
// the view still serves the old matrices, so answers drawn from it no
// longer reflect the database. Locators bind to the generation current
// at their first Warm/Locate; a deployment that mutates the DB
// afterwards must rebuild them (the ingest compactor's hot-swap path)
// rather than keep serving the stale view.
func (c *Compiled) Stale(db *DB) bool { return c.Generation != db.Generation() }

// NumEntries returns the number of training entries in the view.
func (c *Compiled) NumEntries() int { return len(c.Names) }

// NumAPs returns the width of the matrices (the AP universe size).
func (c *Compiled) NumAPs() int { return len(c.BSSIDs) }

// APIndex returns the dense column for a BSSID, false when the AP was
// never seen in training.
func (c *Compiled) APIndex(bssid string) (int, bool) {
	j, ok := c.apIndex[bssid]
	return j, ok
}

// Intern maps an observation (BSSID → RSSI) onto the dense columns,
// appending to the caller-supplied scratch slices (pass nil or
// length-zero slices; reusing them across calls avoids allocation).
// BSSIDs outside the training universe are dropped, matching how the
// map-based scorers ignored them. The returned pairs are sorted by
// column so scans are deterministic regardless of map iteration order.
func (c *Compiled) Intern(obs map[string]float64, cols []int32, vals []float64) ([]int32, []float64) {
	for b, v := range obs {
		if j, ok := c.apIndex[b]; ok {
			cols = append(cols, int32(j))
			vals = append(vals, v)
		}
	}
	// Insertion sort of the parallel pair; heard-AP counts are small.
	for i := 1; i < len(cols); i++ {
		cj, vj := cols[i], vals[i]
		k := i - 1
		for k >= 0 && cols[k] > cj {
			cols[k+1], vals[k+1] = cols[k], vals[k]
			k--
		}
		cols[k+1], vals[k+1] = cj, vj
	}
	return cols, vals
}
