package trainingdb

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPruneAPs(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	// kitchen/apB has 2 samples, hall/apA has 2, kitchen/apA has 3.
	removed := db.PruneAPs(3)
	if removed != 2 {
		t.Errorf("removed %d, want 2", removed)
	}
	if _, ok := db.Entries["kitchen"].PerAP[apB]; ok {
		t.Error("kitchen/apB survived")
	}
	if _, ok := db.Entries["kitchen"].PerAP[apA]; !ok {
		t.Error("kitchen/apA pruned")
	}
	// apB gone entirely → BSSID universe shrinks.
	if len(db.BSSIDs) != 1 || db.BSSIDs[0] != apA {
		t.Errorf("BSSIDs = %v", db.BSSIDs)
	}
	// Idempotent below the surviving counts.
	if db.PruneAPs(3) != 1 { // hall/apA had 2 samples → also pruned now? no: hall/apA has 2 < 3
		// hall/apA was already removed in the first pass (N=2 < 3).
		t.Log("second prune removed hall's record")
	}
}

func TestPruneAPsExact(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	// Threshold 1 removes nothing.
	if removed := db.PruneAPs(1); removed != 0 {
		t.Errorf("removed %d at threshold 1", removed)
	}
	if len(db.BSSIDs) != 2 {
		t.Errorf("BSSIDs = %v", db.BSSIDs)
	}
}

func TestRemoveEntry(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	if db.RemoveEntry("ghost") {
		t.Error("removed nonexistent entry")
	}
	if !db.RemoveEntry("kitchen") {
		t.Fatal("failed to remove kitchen")
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d", db.Len())
	}
	// apB lived only at kitchen.
	if len(db.BSSIDs) != 1 || db.BSSIDs[0] != apA {
		t.Errorf("BSSIDs = %v", db.BSSIDs)
	}
}

func TestDistinguishability(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	d := db.Distinguishability(-95)
	if len(d) != 1 {
		t.Fatalf("pairs = %v", d)
	}
	v, ok := d["hall|kitchen"]
	if !ok {
		t.Fatalf("key missing: %v", d)
	}
	// kitchen: apA −61, apB −74; hall: apA −70.5, apB floor −95.
	want := math.Hypot(-61-(-70.5), -74-(-95))
	if math.Abs(v-want) > 1e-9 {
		t.Errorf("distance %v, want %v", v, want)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	var buf bytes.Buffer
	if err := ExportJSON(&buf, db, true); err != nil {
		t.Fatal(err)
	}
	// Stable field names for interop.
	for _, want := range []string{`"bssid"`, `"std_dev"`, `"samples"`, `"version": 1`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("export missing %s", want)
		}
	}
	back, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() || len(back.BSSIDs) != len(db.BSSIDs) {
		t.Fatal("shape mismatch")
	}
	for name, e := range db.Entries {
		be := back.Entries[name]
		if be == nil || be.Pos != e.Pos {
			t.Fatalf("entry %s lost", name)
		}
		for b, s := range e.PerAP {
			bs := be.PerAP[b]
			if bs == nil || bs.Mean != s.Mean || bs.N != s.N || len(bs.Samples) != len(s.Samples) {
				t.Errorf("%s/%s stats mismatch", name, b)
			}
		}
	}
}

func TestJSONWithoutSamples(t *testing.T) {
	db, _, _ := Generate(testCollection(), testMap(), Options{})
	var buf bytes.Buffer
	if err := ExportJSON(&buf, db, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `"samples"`) {
		t.Error("samples leaked into stats-only export")
	}
	back, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := back.Entries["kitchen"].PerAP[apA]
	if s.Mean == 0 || len(s.Samples) != 0 {
		t.Errorf("stats-only round trip: %+v", s)
	}
}

func TestImportJSONErrors(t *testing.T) {
	cases := []string{
		`{`,
		`{"version": 9}`,
		`{"version": 1, "entries": [{"name": ""}]}`,
		`{"version": 1, "entries": [{"name": "a"}, {"name": "a"}]}`,
		`{"version": 1, "entries": [{"name": "a", "per_ap": [{"bssid": ""}]}]}`,
		`{"version": 1, "entries": []}`,
	}
	for _, in := range cases {
		if _, err := ImportJSON(strings.NewReader(in)); err == nil {
			t.Errorf("accepted %q", in)
		}
	}
}
