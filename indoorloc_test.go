package indoorloc_test

import (
	"path/filepath"
	"testing"

	"indoorloc"
	"indoorloc/internal/locmap"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

// TestFacadeTrainFromFiles drives the one-call file path: wi-scan
// directory + location map → trained service → localization — the
// exact workflow a downstream adopter starts with.
func TestFacadeTrainFromFiles(t *testing.T) {
	dir := t.TempDir()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 31)
	coll := sc.CaptureCollection(grid, 20)
	scanDir := filepath.Join(dir, "scans")
	if err := coll.WriteDir(scanDir); err != nil {
		t.Fatal(err)
	}
	mapPath := filepath.Join(dir, "loc.map")
	if err := locmap.WriteFile(mapPath, grid); err != nil {
		t.Fatal(err)
	}

	svc, err := indoorloc.Train(scanDir, mapPath, "")
	if err != nil {
		t.Fatal(err)
	}
	if svc.DB.Len() != 30 {
		t.Errorf("trained %d locations", svc.DB.Len())
	}
	target := scen.TestPoints[2]
	res, err := svc.LocateRecords(sc.Capture(target, 15, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Estimate.Pos.Dist(target) > 20 {
		t.Errorf("estimate %v vs truth %v", res.Estimate.Pos, target)
	}
	if res.NearestName == "" {
		t.Error("no symbolic name resolved")
	}

	// The zip path works identically.
	zipPath := filepath.Join(dir, "scans.zip")
	if err := coll.WriteZip(zipPath); err != nil {
		t.Fatal(err)
	}
	svc2, err := indoorloc.Train(zipPath, mapPath, indoorloc.AlgoNNSS)
	if err != nil {
		t.Fatal(err)
	}
	if svc2.Locator.Name() != "nnss" {
		t.Errorf("algorithm = %q", svc2.Locator.Name())
	}
}

func TestFacadeTrainErrors(t *testing.T) {
	if _, err := indoorloc.Train("/nonexistent", "/nope", ""); err == nil {
		t.Error("bad scan path accepted")
	}
	// Valid scans, bad map.
	dir := t.TempDir()
	scen := sim.PaperHouse()
	env, _ := scen.Environment()
	grid, _ := scen.TrainingPoints()
	coll := sim.NewScanner(env, 1).CaptureCollection(grid, 2)
	scanDir := filepath.Join(dir, "scans")
	if err := coll.WriteDir(scanDir); err != nil {
		t.Fatal(err)
	}
	if _, err := indoorloc.Train(scanDir, "/nope", ""); err == nil {
		t.Error("bad map path accepted")
	}
}

// TestEveryAlgorithmRoundTrips builds each registered algorithm over a
// file-round-tripped database and localizes one observation.
func TestEveryAlgorithmRoundTrips(t *testing.T) {
	dir := t.TempDir()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 17)
	coll := sc.CaptureCollection(grid, 20)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tdbPath := filepath.Join(dir, "train.tdb")
	if err := trainingdb.SaveFile(tdbPath, db); err != nil {
		t.Fatal(err)
	}
	loaded, err := indoorloc.LoadDatabase(tdbPath)
	if err != nil {
		t.Fatal(err)
	}

	target := scen.TestPoints[7]
	obs := indoorloc.ObservationFromRecords(sc.Capture(target, 15, 0))
	for _, algo := range indoorloc.Algorithms() {
		loc, err := indoorloc.BuildLocator(algo, loaded, indoorloc.BuildConfig{
			APPositions: scen.APPositions(),
		})
		if err != nil {
			t.Errorf("%s: build: %v", algo, err)
			continue
		}
		est, err := loc.Locate(obs)
		if err != nil {
			t.Errorf("%s: locate: %v", algo, err)
			continue
		}
		if !est.Pos.IsFinite() {
			t.Errorf("%s: non-finite estimate %v", algo, est.Pos)
			continue
		}
		// Every method should land inside (or near) the house. The
		// sector code (four house-wide APs → coarse) and least-squares
		// multilateration (amplifies radius bias, see EXPERIMENTS.md
		// R5.2) are intentionally loose, so only sanity bounds apply.
		bound := 60.0
		if algo == indoorloc.AlgoGeometricLS {
			bound = 200
		}
		if est.Pos.Dist(target) > bound {
			t.Errorf("%s: estimate %v wildly far from %v", algo, est.Pos, target)
		}
	}
}

// TestLoadDatabaseMissing covers the facade's error path.
func TestLoadDatabaseMissing(t *testing.T) {
	if _, err := indoorloc.LoadDatabase(filepath.Join(t.TempDir(), "x.tdb")); err == nil {
		t.Error("missing database accepted")
	}
}
