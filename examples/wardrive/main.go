// Wardrive: the full file-based workflow, exactly as a user of the
// shipped tools would run it — capture wi-scan files to disk, zip
// them, generate a training database from the zip plus a location-map
// text file, reload the database, and localize an observation file.
// Everything in this example round-trips through real files in a
// temporary directory; no in-memory shortcuts.
//
//	go run ./examples/wardrive
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"indoorloc"
	"indoorloc/internal/locmap"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

func main() {
	dir, err := os.MkdirTemp("", "wardrive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	fmt.Println("working in", dir)

	// Drive the house: capture 90 sweeps at every grid point and leave
	// one .wiscan file per named location, plus the zip form the
	// Training Database Generator also accepts.
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		log.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		log.Fatal(err)
	}
	scanner := sim.NewScanner(env, 21)
	coll := scanner.CaptureCollection(grid, 90)
	scanDir := filepath.Join(dir, "scans")
	if err := coll.WriteDir(scanDir); err != nil {
		log.Fatal(err)
	}
	zipPath := filepath.Join(dir, "scans.zip")
	if err := coll.WriteZip(zipPath); err != nil {
		log.Fatal(err)
	}
	mapPath := filepath.Join(dir, "locations.map")
	if err := locmap.WriteFile(mapPath, grid); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("captured %d wi-scan files (%d records) + %s\n",
		len(coll.Files), coll.TotalRecords(), filepath.Base(zipPath))

	// Generate the training database from the ZIP (the harder path),
	// write it, and reload it — proving the compressed format
	// round-trips.
	zcoll, err := wiscan.ReadCollection(zipPath)
	if err != nil {
		log.Fatal(err)
	}
	lm, err := locmap.ReadFile(mapPath)
	if err != nil {
		log.Fatal(err)
	}
	db, _, err := trainingdb.Generate(zcoll, lm, trainingdb.Options{})
	if err != nil {
		log.Fatal(err)
	}
	tdbPath := filepath.Join(dir, "train.tdb")
	if err := trainingdb.SaveFile(tdbPath, db); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(tdbPath)
	fmt.Printf("training database: %d entries, %d samples → %d bytes compressed\n",
		db.Len(), db.TotalSamples(), info.Size())

	reloaded, err := indoorloc.LoadDatabase(tdbPath)
	if err != nil {
		log.Fatal(err)
	}

	// Working phase from a file too: capture an observation window,
	// write it as a wi-scan, read it back, localize.
	target := scen.TestPoints[3]
	obsFile := &wiscan.File{Location: "unknown", Records: scanner.Capture(target, 20, 0)}
	obsPath := filepath.Join(dir, "observation.wiscan")
	fh, err := os.Create(obsPath)
	if err != nil {
		log.Fatal(err)
	}
	if err := wiscan.Write(fh, obsFile); err != nil {
		log.Fatal(err)
	}
	fh.Close()
	back, err := os.Open(obsPath)
	if err != nil {
		log.Fatal(err)
	}
	parsed, err := wiscan.Read(back, "observation")
	back.Close()
	if err != nil {
		log.Fatal(err)
	}

	locator, err := indoorloc.BuildLocator(indoorloc.AlgoProbabilistic, reloaded, indoorloc.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}
	est, err := locator.Locate(indoorloc.ObservationFromRecords(parsed.Records))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("observed at %v → estimated %q %v (error %.1f ft)\n",
		target, est.Name, est.Pos, est.Pos.Dist(target))
}
