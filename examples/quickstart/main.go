// Quickstart: train the toolkit on the paper's experiment house and
// locate a user, end to end, in about fifty lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"indoorloc"
	"indoorloc/internal/core"
	"indoorloc/internal/sim"
)

func main() {
	// Phase 1 — training. The simulator stands in for walking a real
	// house with a scanning laptop: the paper's 50×40 ft floor, four
	// corner APs, and 90 scan sweeps (~1.5 minutes) at every
	// training-grid point.
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		log.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		log.Fatal(err)
	}
	scanner := sim.NewScanner(env, 42)
	collection := scanner.CaptureCollection(grid, 90)

	pipeline := &indoorloc.Pipeline{
		Collection:  collection,
		LocMap:      grid,
		Algorithm:   indoorloc.AlgoProbabilistic,
		APPositions: scen.APPositions(),
	}
	service, trace, err := pipeline.Train()
	if err != nil {
		log.Fatal(err)
	}
	for _, step := range trace {
		fmt.Println(step)
	}

	// Phase 2 — working. Observe for a few seconds somewhere in the
	// house and ask where we are.
	here := scen.TestPoints[5] // (25, 20): the centre of the house
	window := scanner.Capture(here, 30, 0)
	res, err := service.LocateRecords(window)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntrue position      %v\n", here)
	fmt.Printf("estimated position %v\n", res.Estimate.Pos)
	fmt.Printf("resolved name      %q\n", res.NearestName)
	fmt.Printf("error              %.1f ft\n", res.Estimate.Pos.Dist(here))

	// The same observation through the paper's geometric approach.
	geo, err := indoorloc.BuildLocator(indoorloc.AlgoGeometric, service.DB,
		core.BuildConfig{APPositions: scen.APPositions()})
	if err != nil {
		log.Fatal(err)
	}
	est, err := geo.Locate(indoorloc.ObservationFromRecords(window))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ngeometric estimate %v (error %.1f ft)\n", est.Pos, est.Pos.Dist(here))
}
