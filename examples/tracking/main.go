// Tracking: the paper's future-work §6.2 — "combine the historical
// location value and the current signal strength value to derive the
// current location". A user walks a lap through the experiment house;
// raw per-window estimates are compared against EWMA, Kalman, particle
// and grid-Bayes tracking.
//
//	go run ./examples/tracking
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"indoorloc"
	"indoorloc/internal/filter"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/sim"
)

func main() {
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		log.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		log.Fatal(err)
	}
	scanner := sim.NewScanner(env, 3)
	service, _, err := (&indoorloc.Pipeline{
		Collection: scanner.CaptureCollection(grid, 90),
		LocMap:     grid,
	}).Train()
	if err != nil {
		log.Fatal(err)
	}

	// Walk a rectangle lap, one observation window every ~2 ft.
	var truth []geom.Point
	lap := []geom.Point{
		geom.Pt(5, 5), geom.Pt(45, 5), geom.Pt(45, 35), geom.Pt(5, 35), geom.Pt(5, 5),
	}
	for i := 0; i+1 < len(lap); i++ {
		steps := int(lap[i].Dist(lap[i+1]) / 2)
		for s := 0; s < steps; s++ {
			truth = append(truth, lap[i].Lerp(lap[i+1], float64(s)/float64(steps)))
		}
	}

	// Raw estimates from short observation windows (a moving user
	// cannot average 1.5 minutes per step — this is exactly why the
	// paper wants history).
	raw := make([]geom.Point, len(truth))
	for i, p := range truth {
		est, err := service.Locator.Locate(
			localize.ObservationFromRecords(scanner.Capture(p, 4, 0)))
		if err != nil {
			log.Fatal(err)
		}
		raw[i] = est.Pos
	}

	filters := []filter.PositionFilter{
		filter.Raw{},
		&filter.EWMA{Alpha: 0.35},
		&filter.Kalman{Dt: 1, ProcessNoise: 0.6, MeasurementNoise: 7},
		&filter.Particle{
			N: 800, MotionSigma: 2.5, MeasurementSigma: 7,
			Bounds: scen.Outline, Rng: rand.New(rand.NewSource(11)),
		},
	}
	fmt.Printf("%-10s %-12s %-12s %s\n", "filter", "rmse(ft)", "mean(ft)", "worst(ft)")
	for _, f := range filters {
		var sumSq, sum, worst float64
		for i, meas := range raw {
			smoothed := f.Update(meas)
			d := smoothed.Dist(truth[i])
			sumSq += d * d
			sum += d
			if d > worst {
				worst = d
			}
		}
		n := float64(len(raw))
		fmt.Printf("%-10s %-12.2f %-12.2f %.2f\n",
			f.Name(), math.Sqrt(sumSq/n), sum/n, worst)
	}
	// The offline RTS smoother is the ceiling: it conditions every
	// step on the whole walk.
	smoothed := filter.SmoothPath(raw, 1, 0.6, 7)
	var sumSq, sum, worst float64
	for i := range smoothed {
		d := smoothed[i].Dist(truth[i])
		sumSq += d * d
		sum += d
		if d > worst {
			worst = d
		}
	}
	n := float64(len(smoothed))
	fmt.Printf("%-10s %-12.2f %-12.2f %.2f\n", "rts", math.Sqrt(sumSq/n), sum/n, worst)
	fmt.Println("\nhistory-aware filters cut the raw per-window error, as §6.2 anticipates;")
	fmt.Println("the offline smoother shows the ceiling when the whole track is available")
}
