// Deploy: plan a brand-new installation end to end — choose AP
// positions with the placement optimizer, render the predicted
// coverage, then survey, train and evaluate the resulting location
// service, all before touching a screwdriver.
//
// The scenario is a long, wall-divided 80×30 ft clinic corridor where
// naive corner placement leaves dead fingerprints.
//
//	go run ./examples/deploy
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"indoorloc"
	"indoorloc/internal/compositor"
	"indoorloc/internal/eval"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/place"
	"indoorloc/internal/rf"
	"indoorloc/internal/sim"
	"indoorloc/internal/units"
)

func main() {
	outline := geom.RectWH(0, 0, 80, 30)
	walls := []geom.Segment{
		geom.Seg(geom.Pt(20, 0), geom.Pt(20, 20)),
		geom.Seg(geom.Pt(40, 10), geom.Pt(40, 30)),
		geom.Seg(geom.Pt(60, 0), geom.Pt(60, 20)),
	}

	// 1. Choose 4 AP positions for fingerprint distinguishability over
	//    the survey grid the clinic will train on.
	samples := place.GridCandidates(outline, 10)
	prob := &place.Problem{
		Candidates: place.GridCandidates(outline, 5),
		Samples:    samples,
		Walls:      walls,
		Objective:  place.Distinguishability,
	}
	pick, err := place.Greedy(prob, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("placement:", pick.Describe())
	cornerScore, err := place.Evaluate(prob, []geom.Point{
		geom.Pt(0, 0), geom.Pt(80, 0), geom.Pt(80, 30), geom.Pt(0, 30),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corner layout would score %.1f vs optimizer's %.1f\n", cornerScore, pick.Score)

	// 2. Render predicted coverage for the first chosen AP.
	plan, err := compositor.Blueprint("clinic corridor", compositor.BlueprintSpec{
		Outline: outline, Walls: walls, Title: "CLINIC",
	})
	if err != nil {
		log.Fatal(err)
	}
	for i, pos := range pick.Positions {
		px, err := plan.ToPixel(pos)
		if err != nil {
			log.Fatal(err)
		}
		plan.AddAP(fmt.Sprintf("ap%d", i), px)
	}
	model := rf.DefaultLogDistance()
	ap0 := pick.Positions[0]
	canvas, err := compositor.RenderHeatmap(plan, compositor.Heatmap{
		Field: func(p geom.Point) float64 {
			w := geom.CrossingCount(ap0, p, walls)
			return float64(model.MeanRSSI(units.DBm(-30), ap0.Dist(p), w))
		},
		Lo: -95, Hi: -40, CellFeet: 1, Area: outline,
	})
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "deploy-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	heatPath := filepath.Join(dir, "coverage-ap0.gif")
	if err := canvas.SaveGIF(heatPath); err != nil {
		log.Fatal(err)
	}
	fmt.Println("coverage heatmap:", heatPath)

	// 3. Survey and train on the planned deployment.
	scen := sim.Scenario{
		Name:        "clinic corridor",
		Outline:     outline,
		Walls:       walls,
		GridSpacing: 10,
		Radio:       rf.Config{ShadowSigma: 4, ShadowCell: 12, Seed: 17},
	}
	for i, pos := range pick.Positions {
		scen.APs = append(scen.APs, rf.AP{
			BSSID:   fmt.Sprintf("0a:00:00:00:00:%02x", i),
			SSID:    "clinic",
			Pos:     pos,
			TxPower: -30,
			Channel: 1 + 5*(i%3),
		})
	}
	env, err := scen.Environment()
	if err != nil {
		log.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		log.Fatal(err)
	}
	scanner := sim.NewScanner(env, 55)
	service, _, err := (&indoorloc.Pipeline{
		Collection: scanner.CaptureCollection(grid, 60),
		LocMap:     grid,
	}).Train()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Acceptance test: localize at spots the clinic cares about.
	report := &eval.Report{}
	for _, spot := range []geom.Point{
		geom.Pt(10, 15), geom.Pt(30, 8), geom.Pt(50, 22), geom.Pt(70, 12), geom.Pt(44, 28),
	} {
		obs := localize.ObservationFromRecords(scanner.Capture(spot, 20, 0))
		trial := eval.Trial{True: spot}
		if want, _, ok := grid.Nearest(spot); ok {
			trial.WantName = want
		}
		res, err := service.Locate(obs)
		if err != nil {
			trial.Err = err
		} else {
			trial.Est = res.Estimate.Pos
			trial.EstName = res.Estimate.Name
			radius := localize.ConfidenceRadius(res.Estimate, 0.9)
			fmt.Printf("  %v → %q %v (90%% confidence within %.0f ft)\n",
				spot, res.NearestName, res.Estimate.Pos, radius)
		}
		report.Add(trial)
	}
	fmt.Printf("acceptance: %s\n", report.String())
}
