// Roomfinder: the paper's motivating scenario — "a conference attender
// can download the corresponding material based on the meeting room he
// or she is located" — over a custom office floor with named rooms.
//
// The example builds its own scenario (not the paper house): a
// 90×60 ft office wing with six APs and room-level training, then
// resolves a visitor's observation to a room name and "serves" the
// right agenda.
//
//	go run ./examples/roomfinder
package main

import (
	"fmt"
	"log"

	"indoorloc"
	"indoorloc/internal/geom"
	"indoorloc/internal/locmap"
	"indoorloc/internal/rf"
	"indoorloc/internal/sim"
)

// agenda maps rooms to the material a location-aware app would serve.
var agenda = map[string]string{
	"meeting room A": "09:00 Toolkit architectures for localization",
	"meeting room B": "09:00 RF propagation for the working engineer",
	"lecture hall":   "10:30 Keynote: the pervasive computing vision",
	"lounge":         "coffee, unstructured hallway track",
	"lab 1":          "hands-on: wardriving your own building",
	"lab 2":          "hands-on: training database surgery",
}

func main() {
	scen := sim.Scenario{
		Name:    "office wing",
		Outline: geom.RectWH(0, 0, 90, 60),
		APs: []rf.AP{
			{BSSID: "00:30:ab:00:00:01", SSID: "office", Pos: geom.Pt(0, 0), TxPower: -30, Channel: 1},
			{BSSID: "00:30:ab:00:00:02", SSID: "office", Pos: geom.Pt(90, 0), TxPower: -30, Channel: 6},
			{BSSID: "00:30:ab:00:00:03", SSID: "office", Pos: geom.Pt(90, 60), TxPower: -30, Channel: 11},
			{BSSID: "00:30:ab:00:00:04", SSID: "office", Pos: geom.Pt(0, 60), TxPower: -30, Channel: 1},
			{BSSID: "00:30:ab:00:00:05", SSID: "office", Pos: geom.Pt(45, 0), TxPower: -30, Channel: 6},
			{BSSID: "00:30:ab:00:00:06", SSID: "office", Pos: geom.Pt(45, 60), TxPower: -30, Channel: 11},
		},
		Walls: []geom.Segment{
			geom.Seg(geom.Pt(30, 0), geom.Pt(30, 40)),
			geom.Seg(geom.Pt(60, 20), geom.Pt(60, 60)),
			geom.Seg(geom.Pt(0, 40), geom.Pt(20, 40)),
		},
		GridSpacing: 10,
		Radio:       rf.Config{ShadowSigma: 4, ShadowCell: 12, Seed: 7},
	}
	env, err := scen.Environment()
	if err != nil {
		log.Fatal(err)
	}

	// Room-level training: one named location at each room's centre,
	// the way the Floor Plan Processor's "add location names" is meant
	// to be used — the application wants rooms, not coordinates.
	rooms := locmap.New()
	for name, centre := range map[string]geom.Point{
		"meeting room A": geom.Pt(15, 20),
		"meeting room B": geom.Pt(15, 50),
		"lecture hall":   geom.Pt(45, 30),
		"lounge":         geom.Pt(45, 50),
		"lab 1":          geom.Pt(75, 10),
		"lab 2":          geom.Pt(75, 45),
	} {
		if err := rooms.Add(name, centre); err != nil {
			log.Fatal(err)
		}
	}
	scanner := sim.NewScanner(env, 99)
	service, _, err := (&indoorloc.Pipeline{
		Collection: scanner.CaptureCollection(rooms, 60),
		LocMap:     rooms,
	}).Train()
	if err != nil {
		log.Fatal(err)
	}

	// Visitors wander in; the app resolves each to a room and serves
	// the room's material.
	visitors := []struct {
		who string
		at  geom.Point
	}{
		{"alice", geom.Pt(13, 23)}, // meeting room A
		{"bob", geom.Pt(48, 33)},   // lecture hall
		{"carol", geom.Pt(72, 42)}, // lab 2
		{"dave", geom.Pt(44, 53)},  // lounge
		{"erin", geom.Pt(78, 8)},   // lab 1
		{"frank", geom.Pt(16, 47)}, // meeting room B
	}
	correct := 0
	for _, v := range visitors {
		res, err := service.LocateRecords(scanner.Capture(v.at, 15, 0))
		if err != nil {
			log.Fatal(err)
		}
		room := res.Estimate.Name
		fmt.Printf("%-6s at %v → %q: %s\n", v.who, v.at, room, agenda[room])
		if want, _, _ := rooms.Nearest(v.at); want == room {
			correct++
		}
	}
	fmt.Printf("\n%d/%d visitors resolved to the right room\n", correct, len(visitors))
}
