package indoorloc_test

import (
	"encoding/json"
	"os"
	"testing"
)

// TestServerLocateAllocRegression pins the /locate round trip's
// allocation count to the BENCH_serving.json reference: the zero-alloc
// front end must not creep back toward per-request garbage as routes
// and middleware accrete. The ceiling is the recorded allocs/op plus
// ~10% slack for toolchain drift — a new per-request allocation in the
// router, middleware or metrics layer (each request would add at
// least +1 exactly) fails this immediately.
func TestServerLocateAllocRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts")
	}
	if testing.Short() {
		t.Skip("runs a full benchmark")
	}
	raw, err := os.ReadFile("BENCH_serving.json")
	if err != nil {
		t.Fatalf("reference missing: %v", err)
	}
	var ref struct {
		Benchmarks map[string]struct {
			After struct {
				AllocsPerOp int64 `json:"allocs_per_op"`
			} `json:"after"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &ref); err != nil {
		t.Fatal(err)
	}
	want := ref.Benchmarks["BenchmarkServerLocate"].After.AllocsPerOp
	if want == 0 {
		t.Fatal("BENCH_serving.json has no BenchmarkServerLocate allocs_per_op")
	}
	res := testing.Benchmark(BenchmarkServerLocate)
	got := res.AllocsPerOp()
	limit := want + want/10
	t.Logf("/locate round trip: %d allocs/op (reference %d, ceiling %d)", got, want, limit)
	if got > limit {
		t.Errorf("/locate allocates %d/op, above the %d ceiling — the front end regressed vs BENCH_serving.json's %d",
			got, limit, want)
	}
}
