//go:build race

package indoorloc_test

// raceEnabled reports whether the race detector is instrumenting this
// build; alloc-accounting regression tests skip under it because the
// race runtime inflates allocation counts.
const raceEnabled = true
