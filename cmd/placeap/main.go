// placeap proposes access-point positions for a floor plan: greedy
// selection over a candidate grid, optimising either worst-case
// coverage or fingerprint distinguishability, and compares the result
// against the plan's existing AP layout when one is marked.
//
// Usage:
//
//	placeap -plan house.plan -k 4                          # coverage
//	placeap -plan house.plan -k 4 -objective distinguish   # fingerprinting
//	placeap -plan house.plan -k 4 -pitch 5 -render out.gif # draw the pick
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"indoorloc/internal/compositor"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/place"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "placeap:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("placeap", flag.ContinueOnError)
	var (
		planPath  = fs.String("plan", "", "annotated plan (required; walls and named locations are used)")
		k         = fs.Int("k", 4, "number of APs to place")
		pitch     = fs.Float64("pitch", 5, "candidate grid pitch, feet")
		objective = fs.String("objective", "coverage", "coverage | distinguish")
		render    = fs.String("render", "", "write a .gif/.png with the proposed positions marked")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planPath == "" {
		return fmt.Errorf("need -plan FILE")
	}
	plan, err := floorplan.LoadFile(*planPath)
	if err != nil {
		return err
	}
	lm, err := plan.LocationMap()
	if err != nil {
		return err
	}
	// Sample points: the plan's named locations when present, else a
	// 10-ft grid over the annotation bounding box.
	var samples []geom.Point
	for _, name := range lm.Names() {
		p, _ := lm.Lookup(name)
		samples = append(samples, p)
	}
	area := boundsOf(samples)
	if len(samples) == 0 {
		return fmt.Errorf("plan has no named locations to optimise for")
	}

	prob := &place.Problem{
		Candidates: place.GridCandidates(area, *pitch),
		Samples:    samples,
		Walls:      plan.Walls,
	}
	switch strings.ToLower(*objective) {
	case "coverage":
		prob.Objective = place.Coverage
	case "distinguish", "distinguishability":
		prob.Objective = place.Distinguishability
	default:
		return fmt.Errorf("unknown objective %q", *objective)
	}

	res, err := place.Greedy(prob, *k)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "objective: %s over %d samples, %d candidates\n",
		prob.Objective, len(prob.Samples), len(prob.Candidates))
	fmt.Fprintf(out, "proposed: %s\n", res.Describe())

	// Score the plan's existing layout for comparison.
	if len(plan.APs) > 0 {
		existing, err := plan.APPositions()
		if err == nil && len(existing) > 0 {
			var positions []geom.Point
			for _, p := range existing {
				positions = append(positions, p)
			}
			score, err := place.Evaluate(prob, positions)
			if err == nil {
				fmt.Fprintf(out, "existing %d-AP layout scores %.1f (proposed: %.1f)\n",
					len(positions), score, res.Score)
			}
		}
	}

	if *render != "" {
		markers := make([]compositor.WorldMarker, len(res.Positions))
		for i, pos := range res.Positions {
			markers[i] = compositor.WorldMarker{
				Pos:   pos,
				Label: fmt.Sprintf("P%d", i+1),
				Style: compositor.StyleSquare,
				Ink:   compositor.Purple,
			}
		}
		canvas, err := compositor.Render(plan, compositor.RenderOptions{
			DrawAPs: true, DrawWalls: true, Labels: true, Markers: markers,
		})
		if err != nil {
			return err
		}
		switch {
		case strings.HasSuffix(strings.ToLower(*render), ".gif"):
			err = canvas.SaveGIF(*render)
		case strings.HasSuffix(strings.ToLower(*render), ".png"):
			err = canvas.SavePNG(*render)
		default:
			return fmt.Errorf("-render must end in .gif or .png")
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *render)
	}
	return nil
}

// boundsOf spans the sample points.
func boundsOf(pts []geom.Point) geom.Rect {
	if len(pts) == 0 {
		return geom.Rect{}
	}
	r := geom.Rect{Min: pts[0], Max: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Min.X {
			r.Min.X = p.X
		}
		if p.Y < r.Min.Y {
			r.Min.Y = p.Y
		}
		if p.X > r.Max.X {
			r.Max.X = p.X
		}
		if p.Y > r.Max.Y {
			r.Max.Y = p.Y
		}
	}
	return r
}
