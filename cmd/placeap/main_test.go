package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/compositor"
	"indoorloc/internal/geom"
	"indoorloc/internal/sim"
)

func housePlanPath(t *testing.T) string {
	t.Helper()
	scen := sim.PaperHouse()
	plan, err := compositor.Blueprint(scen.Name, compositor.BlueprintSpec{
		Outline: scen.Outline, Walls: scen.Walls,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range scen.APs {
		px, err := plan.ToPixel(ap.Pos)
		if err != nil {
			t.Fatal(err)
		}
		plan.AddAP(ap.BSSID, px)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range grid.Names() {
		w, _ := grid.Lookup(name)
		px, err := plan.ToPixel(w)
		if err != nil {
			t.Fatal(err)
		}
		if err := plan.AddLocation(name, px); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(t.TempDir(), "house.plan")
	if err := plan.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestPlaceapCoverage(t *testing.T) {
	planPath := housePlanPath(t)
	var out bytes.Buffer
	if err := run([]string{"-plan", planPath, "-k", "3", "-pitch", "10"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "proposed: 3 APs") {
		t.Errorf("output %q", s)
	}
	if !strings.Contains(s, "existing 4-AP layout scores") {
		t.Errorf("no comparison in %q", s)
	}
}

func TestPlaceapDistinguishAndRender(t *testing.T) {
	planPath := housePlanPath(t)
	gifPath := filepath.Join(t.TempDir(), "placed.gif")
	var out bytes.Buffer
	err := run([]string{
		"-plan", planPath, "-k", "2", "-pitch", "10",
		"-objective", "distinguish", "-render", gifPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(gifPath)
	if err != nil || info.Size() == 0 {
		t.Fatalf("render: %v", err)
	}
}

func TestPlaceapErrors(t *testing.T) {
	planPath := housePlanPath(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no plan accepted")
	}
	if err := run([]string{"-plan", "/nope"}, &out); err == nil {
		t.Error("missing plan accepted")
	}
	if err := run([]string{"-plan", planPath, "-objective", "banana"}, &out); err == nil {
		t.Error("bad objective accepted")
	}
	if err := run([]string{"-plan", planPath, "-render", "x.bmp"}, &out); err == nil {
		t.Error("bmp render accepted")
	}
	// A plan with no named locations cannot be optimised.
	bare, err := compositor.Blueprint("bare", compositor.BlueprintSpec{
		Outline: geom.RectWH(0, 0, 20, 20),
	})
	if err != nil {
		t.Fatal(err)
	}
	barePath := filepath.Join(t.TempDir(), "bare.plan")
	if err := bare.SaveFile(barePath); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-plan", barePath}, &out); err == nil {
		t.Error("location-free plan accepted")
	}
}
