// Command loclint checks the repository against the serving-path
// invariants encoded in internal/analysis (see DESIGN.md "Enforced
// invariants").
//
// It runs in three modes:
//
//	loclint [packages]            standalone: analyzes the given
//	                              package patterns (default ./...) by
//	                              re-invoking itself through go vet
//	go vet -vettool=loclint ...   unit-checker: driven by the go
//	                              command, one compilation unit at a
//	                              time, with full type information and
//	                              build caching
//	loclint -check [packages]     directive lint: parse-only validation
//	                              of every //loclint: directive —
//	                              unknown directives, allow lists
//	                              naming unknown analyzers, mmapdecode
//	                              without a reason
//
// With LOCLINT_DEBUG=timing in the environment, the standalone mode
// aggregates per-analyzer wall time across all compilation units and
// prints a table to stderr, so new analyzers can be budgeted.
//
// All modes exit non-zero when any diagnostic fires.
package main

import (
	"bufio"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/unitchecker"

	"indoorloc/internal/analysis/directive"
	"indoorloc/internal/analysis/loclint"
)

// timingEnv points unitchecker children at the shared append-only
// timing file the standalone parent aggregates.
const timingEnv = "LOCLINT_TIMING_FILE"

func main() {
	if len(os.Args) > 1 && os.Args[1] == "-check" {
		os.Exit(checkDirectives(os.Args[2:]))
	}
	// The go command drives a vettool with flag-style arguments
	// (-V=full, -flags) and JSON config files (*.cfg); bare package
	// patterns mean a human invoked us standalone.
	if unitcheckerInvocation(os.Args[1:]) {
		suite := loclint.All()
		if path := os.Getenv(timingEnv); path != "" {
			instrumentTimings(suite, path)
		}
		unitchecker.Main(suite...) // never returns
	}
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loclint: %v\n", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	var timingFile string
	if os.Getenv("LOCLINT_DEBUG") == "timing" {
		tf, err := os.CreateTemp("", "loclint-timing-*")
		if err == nil {
			tf.Close()
			timingFile = tf.Name()
			defer os.Remove(timingFile)
			cmd.Env = append(os.Environ(), timingEnv+"="+timingFile)
		}
	}
	runErr := cmd.Run()
	if timingFile != "" {
		reportTimings(timingFile)
	}
	if runErr != nil {
		if ee, ok := runErr.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "loclint: %v\n", runErr)
		os.Exit(2)
	}
}

// unitcheckerInvocation reports whether the arguments look like the go
// command driving us as a vettool.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-") {
			return true
		}
	}
	return false
}

// instrumentTimings wraps every analyzer Run with a wall-clock timer
// appending "name nanoseconds" lines to path. Appends of short lines
// are effectively atomic, so parallel vet workers can share the file.
func instrumentTimings(suite []*analysis.Analyzer, path string) {
	for _, a := range suite {
		a := a
		orig := a.Run
		a.Run = func(pass *analysis.Pass) (any, error) {
			start := time.Now()
			res, err := orig(pass)
			elapsed := time.Since(start)
			if f, ferr := os.OpenFile(path, os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o644); ferr == nil {
				fmt.Fprintf(f, "%s %d\n", a.Name, elapsed.Nanoseconds())
				f.Close()
			}
			return res, err
		}
	}
}

// reportTimings aggregates the per-unit timing lines and prints a
// per-analyzer total table, slowest first.
func reportTimings(path string) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	totals := make(map[string]time.Duration)
	units := make(map[string]int)
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		name, nsText, ok := strings.Cut(strings.TrimSpace(sc.Text()), " ")
		if !ok {
			continue
		}
		ns, err := strconv.ParseInt(nsText, 10, 64)
		if err != nil {
			continue
		}
		totals[name] += time.Duration(ns)
		units[name]++
	}
	names := make([]string, 0, len(totals))
	for n := range totals {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
	fmt.Fprintf(os.Stderr, "loclint timing (per analyzer, summed over %s compilation units):\n", pluralUnits(units))
	for _, n := range names {
		fmt.Fprintf(os.Stderr, "  %-14s %10.2fms over %d units\n", n, float64(totals[n])/float64(time.Millisecond), units[n])
	}
}

func pluralUnits(units map[string]int) string {
	max := 0
	for _, c := range units {
		if c > max {
			max = c
		}
	}
	return strconv.Itoa(max)
}

// checkDirectives parses every Go file of the given package patterns
// (default ./...) without type-checking and validates the //loclint:
// directive grammar against the registered analyzer names.
func checkDirectives(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	out, err := exec.Command("go", append([]string{"list", "-f", "{{.Dir}}"}, patterns...)...).Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loclint -check: go list: %v\n", err)
		return 2
	}
	known := loclint.Names()
	fset := token.NewFileSet()
	bad := 0
	for _, dir := range strings.Fields(strings.TrimSpace(string(out))) {
		files, err := filepath.Glob(filepath.Join(dir, "*.go"))
		if err != nil {
			continue
		}
		sort.Strings(files)
		for _, file := range files {
			f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loclint -check: %v\n", err)
				bad++
				continue
			}
			for _, p := range directive.Validate(f, known) {
				fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(p.Pos), p.Msg)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "loclint -check: %d malformed directive(s)\n", bad)
		return 1
	}
	return 0
}
