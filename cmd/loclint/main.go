// Command loclint checks the repository against the serving-path
// invariants encoded in internal/analysis (see DESIGN.md "Enforced
// invariants").
//
// It runs in two modes:
//
//	loclint [packages]            standalone: analyzes the given
//	                              package patterns (default ./...) by
//	                              re-invoking itself through go vet
//	go vet -vettool=loclint ...   unit-checker: driven by the go
//	                              command, one compilation unit at a
//	                              time, with full type information and
//	                              build caching
//
// Both modes exit non-zero when any diagnostic fires.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"indoorloc/internal/analysis/loclint"
)

func main() {
	// The go command drives a vettool with flag-style arguments
	// (-V=full, -flags) and JSON config files (*.cfg); bare package
	// patterns mean a human invoked us standalone.
	if unitcheckerInvocation(os.Args[1:]) {
		unitchecker.Main(loclint.All()...) // never returns
	}
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "loclint: %v\n", err)
		os.Exit(2)
	}
	args := append([]string{"vet", "-vettool=" + self}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "loclint: %v\n", err)
		os.Exit(2)
	}
}

// unitcheckerInvocation reports whether the arguments look like the go
// command driving us as a vettool.
func unitcheckerInvocation(args []string) bool {
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") || strings.HasPrefix(a, "-") {
			return true
		}
	}
	return false
}
