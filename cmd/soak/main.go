// soak drives sustained mixed traffic — /locate, /locate/batch,
// /track and /train/report — against the serving front end and reports
// the latency distribution (p50/p99/p999 per route), sustained
// observation throughput, and an allocations-per-request curve sampled
// over the run. It is the load-side companion to the zero-allocation
// router: BENCH_soak.json, its output, is the evidence that the
// serving path holds its latency and allocation behaviour for minutes,
// not just for one benchmark iteration.
//
// Usage:
//
//	soak -duration 60s -qps 2000 -out BENCH_soak.json
//	soak -url http://10.0.0.5:8080 -mix locate=90,batch=5,track=5
//
// Without -url the harness boots an in-process server over the paper
// house simulation — the same fixture the benchmarks use — with live
// training enabled (WAL in a temp dir), and drives it over real
// loopback HTTP so the measured path includes the TCP stack and the
// client, exactly like BENCH_serving.json's numbers.
//
// The traffic mix is percentages by request (batch requests carry
// -batch-size observations each); -qps 0 removes pacing and measures
// saturated throughput. Latency is recorded into the same fixed-bucket
// histograms the server exports at /metrics, so the client-side
// quantiles here and the server-side quantiles there are directly
// comparable. The allocs-per-request curve comes from
// runtime.MemStats sampled every -window: client and server share the
// process in in-process mode, so the curve bounds the whole stack's
// allocation rate — a leak or a regression shows up as a rising curve.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/ingest"
	"indoorloc/internal/metrics"
	"indoorloc/internal/server"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "soak:", err)
		os.Exit(1)
	}
}

// ops are the traffic classes, in mix order.
const (
	opLocate = iota
	opBatch
	opTrack
	opIngest
	numOps
)

var opNames = [numOps]string{"locate", "batch", "track", "ingest"}

// parseMix turns "locate=80,batch=5,track=10,ingest=5" into per-op
// percentages summing to 100.
func parseMix(s string) ([numOps]int, error) {
	var mix [numOps]int
	total := 0
	for _, part := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return mix, fmt.Errorf("mix entry %q: want name=percent", part)
		}
		n, err := strconv.Atoi(val)
		if err != nil || n < 0 {
			return mix, fmt.Errorf("mix entry %q: bad percentage", part)
		}
		idx := -1
		for i, known := range opNames {
			if name == known {
				idx = i
			}
		}
		if idx < 0 {
			return mix, fmt.Errorf("mix entry %q: unknown op (want %v)", part, opNames)
		}
		mix[idx] = n
		total += n
	}
	if total != 100 {
		return mix, fmt.Errorf("mix percentages sum to %d, want 100", total)
	}
	return mix, nil
}

// schedule unrolls the mix into a 100-slot rotation, interleaved so a
// worker cycling through it reproduces the percentages without
// clustering (all batches back to back would distort pacing).
func schedule(mix [numOps]int) []int {
	var sched []int
	remaining := mix
	for len(sched) < 100 {
		for op := 0; op < numOps; op++ {
			if remaining[op] > 0 {
				sched = append(sched, op)
				remaining[op]--
			}
		}
	}
	return sched
}

type soakReport struct {
	Description string         `json:"description"`
	Date        string         `json:"date"`
	Config      soakConfig     `json:"config"`
	Totals      soakTotals     `json:"totals"`
	Routes      map[string]any `json:"routes"`
	Windows     []windowRec    `json:"windows"`
	Reference   map[string]any `json:"reference,omitempty"`
}

type soakConfig struct {
	URL       string  `json:"url"`
	Duration  string  `json:"duration"`
	QPS       float64 `json:"qps"`
	Workers   int     `json:"workers"`
	Mix       string  `json:"mix"`
	BatchSize int     `json:"batch_size"`
}

type soakTotals struct {
	DurationS    float64 `json:"duration_s"`
	Requests     uint64  `json:"requests"`
	Errors       uint64  `json:"errors"`
	Observations uint64  `json:"observations"`
	RequestsSec  float64 `json:"requests_per_sec"`
	ObsSec       float64 `json:"obs_per_sec"`
}

type routeRec struct {
	Count  uint64  `json:"count"`
	Errors uint64  `json:"errors"`
	P50us  int64   `json:"p50_us"`
	P99us  int64   `json:"p99_us"`
	P999us int64   `json:"p999_us"`
	MeanUs float64 `json:"mean_us"`
}

type windowRec struct {
	TS          float64 `json:"t_s"`
	Requests    uint64  `json:"requests"`
	QPS         float64 `json:"qps"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	HeapMB      float64 `json:"heap_mb"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	var (
		url       = fs.String("url", "", "target base URL (empty = in-process server over the paper-house sim)")
		duration  = fs.Duration("duration", 60*time.Second, "soak length")
		qps       = fs.Float64("qps", 0, "target total requests/sec (0 = unpaced, saturate)")
		workers   = fs.Int("workers", 2*runtime.GOMAXPROCS(0), "concurrent request loops")
		mixSpec   = fs.String("mix", "locate=70,batch=10,track=15,ingest=5", "traffic mix, percent by request")
		batchSize = fs.Int("batch-size", 64, "observations per /locate/batch request")
		window    = fs.Duration("window", 5*time.Second, "allocs/op sampling window")
		outPath   = fs.String("out", "", "write the JSON report here (default stdout only)")
		refPath   = fs.String("ref", "BENCH_serving.json", "serving benchmark file for the reference section ('' = skip)")

		followers  = fs.Int("followers", 0, "replication mode: soak 1 in-process trainer + N followers (replaces the single-venue mix)")
		preload    = fs.Int("preload", 2000, "reports folded into the trainer before cold catch-up is timed (-followers mode)")
		reportsQPS = fs.Float64("reports-qps", 200, "trainer ingest rate during the steady-state phase (-followers mode)")
		locateQPS  = fs.Float64("locate-qps", 300, "paced locate rate per node during the steady-state phase (-followers mode)")
		capSlice   = fs.Duration("cap-slice", 0, "saturated capacity slice per node (-followers mode; 0 = duration/2 clamped to [500ms, 5s])")
		mapEntries = fs.Int("map-entries", 0, "replicate a synthetic map this large instead of the paper house (-followers mode)")
		mapAPs     = fs.Int("map-aps", 0, "APs in the synthetic map (-followers mode with -map-entries; 0 = 8)")

		venues       = fs.Int("venues", 0, "city-scale mode: soak N synthetic venues behind /v1/venues under an LRU budget (replaces the single-venue mix)")
		venuesBudget = fs.Int64("venues-budget", 0, "LRU memory budget in bytes for -venues mode (0 = a quarter of the generated city)")
		venuesDir    = fs.String("venues-dir", "", "reuse/emit city artifacts here instead of a temp dir (-venues mode)")
		zipfS        = fs.Float64("zipf-s", 1.1, "zipf skew of the venue popularity distribution (-venues mode; must be > 1)")
		seed         = fs.Int64("seed", 1, "city generation and traffic seed (-venues mode)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *followers > 0 {
		if *venues > 0 {
			return errors.New("-followers and -venues are mutually exclusive")
		}
		return runFollow(followSoakOpts{
			followers:  *followers,
			preload:    *preload,
			duration:   *duration,
			capSlice:   *capSlice,
			workers:    *workers,
			reportsQPS: *reportsQPS,
			locateQPS:  *locateQPS,
			mapEntries: *mapEntries,
			mapAPs:     *mapAPs,
			outPath:    *outPath,
		}, out)
	}
	if *venues > 0 {
		return runVenues(venueSoakOpts{
			venues:   *venues,
			budget:   *venuesBudget,
			duration: *duration,
			workers:  *workers,
			qps:      *qps,
			zipfS:    *zipfS,
			seed:     *seed,
			outPath:  *outPath,
			dir:      *venuesDir,
		}, out)
	}
	if *venuesBudget != 0 || *venuesDir != "" {
		return errors.New("-venues-budget and -venues-dir need -venues N")
	}
	if *duration <= 0 || *workers <= 0 || *batchSize <= 0 || *window <= 0 {
		return errors.New("-duration, -workers, -batch-size and -window must be positive")
	}
	mix, err := parseMix(*mixSpec)
	if err != nil {
		return err
	}
	if *url != "" && mix[opIngest] > 0 && !strings.Contains(*mixSpec, "ingest=0") {
		fmt.Fprintln(out, "soak: note: remote target must serve /train/report or ingest traffic will count as errors")
	}

	base := *url
	if base == "" {
		addr, shutdown, err := startInProcess()
		if err != nil {
			return err
		}
		defer shutdown()
		base = "http://" + addr
	}

	bodies, err := buildBodies(*batchSize)
	if err != nil {
		return err
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        *workers * 2,
		MaxIdleConnsPerHost: *workers * 2,
	}}

	var (
		hists     [numOps]metrics.Histogram
		counts    [numOps]atomic.Uint64
		errCounts [numOps]atomic.Uint64
		requests  atomic.Uint64
		obsCount  atomic.Uint64
	)
	sched := schedule(mix)
	interval := time.Duration(0)
	if *qps > 0 {
		interval = time.Duration(float64(*workers) * float64(time.Second) / *qps)
	}

	start := time.Now()
	deadline := start.Add(*duration)
	stop := make(chan struct{})
	var windows []windowRec
	var windowWG sync.WaitGroup
	windowWG.Add(1)
	go func() { // allocs/op + throughput curve
		defer windowWG.Done()
		tick := time.NewTicker(*window)
		defer tick.Stop()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		lastMallocs, lastReqs, lastT := ms.Mallocs, requests.Load(), time.Now()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			runtime.ReadMemStats(&ms)
			reqs := requests.Load()
			now := time.Now()
			dReq := reqs - lastReqs
			rec := windowRec{
				TS:       now.Sub(start).Seconds(),
				Requests: dReq,
				QPS:      float64(dReq) / now.Sub(lastT).Seconds(),
				HeapMB:   float64(ms.HeapAlloc) / (1 << 20),
			}
			if dReq > 0 {
				rec.AllocsPerOp = float64(ms.Mallocs-lastMallocs) / float64(dReq)
			}
			windows = append(windows, rec)
			lastMallocs, lastReqs, lastT = ms.Mallocs, reqs, now
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			trackPath := "/track/soak-" + strconv.Itoa(w)
			seq := w // stagger workers through the rotation
			next := time.Now()
			for time.Now().Before(deadline) {
				if interval > 0 {
					if now := time.Now(); now.Before(next) {
						time.Sleep(next.Sub(now))
					}
					next = next.Add(interval)
					if behind := time.Since(next); behind > time.Second {
						next = time.Now() // stall recovery, not a burst
					}
				}
				op := sched[seq%len(sched)]
				seq++
				var path string
				var body []byte
				switch op {
				case opLocate:
					path, body = "/locate", bodies.locate[seq%len(bodies.locate)]
				case opBatch:
					path, body = "/locate/batch", bodies.batch
				case opTrack:
					path, body = trackPath, bodies.locate[seq%len(bodies.locate)]
				case opIngest:
					path, body = "/train/report", bodies.ingest[seq%len(bodies.ingest)]
				}
				t0 := time.Now()
				ok := post(client, base+path, body)
				hists[op].Observe(time.Since(t0))
				counts[op].Add(1)
				requests.Add(1)
				if !ok {
					errCounts[op].Add(1)
				} else if op == opBatch {
					obsCount.Add(uint64(*batchSize))
				} else {
					obsCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	windowWG.Wait()
	elapsed := time.Since(start)

	report := soakReport{
		Description: "Sustained mixed-traffic soak of the serving front end; latency quantiles are client-observed over loopback HTTP, allocs/op windows cover the whole process (client+server in-process).",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Config: soakConfig{
			URL: *url, Duration: duration.String(), QPS: *qps,
			Workers: *workers, Mix: *mixSpec, BatchSize: *batchSize,
		},
		Routes:  map[string]any{},
		Windows: windows,
	}
	var totalReq, totalErr uint64
	for op := 0; op < numOps; op++ {
		n := counts[op].Load()
		if n == 0 {
			continue
		}
		totalReq += n
		totalErr += errCounts[op].Load()
		report.Routes[opNames[op]] = routeRec{
			Count:  n,
			Errors: errCounts[op].Load(),
			P50us:  hists[op].Quantile(0.50).Microseconds(),
			P99us:  hists[op].Quantile(0.99).Microseconds(),
			P999us: hists[op].Quantile(0.999).Microseconds(),
			MeanUs: float64(hists[op].Sum().Microseconds()) / float64(n),
		}
	}
	report.Totals = soakTotals{
		DurationS:    elapsed.Seconds(),
		Requests:     totalReq,
		Errors:       totalErr,
		Observations: obsCount.Load(),
		RequestsSec:  float64(totalReq) / elapsed.Seconds(),
		ObsSec:       float64(obsCount.Load()) / elapsed.Seconds(),
	}
	if *refPath != "" {
		if ref := referenceSection(*refPath, report.Totals); ref != nil {
			report.Reference = ref
		}
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *outPath != "" {
		if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
			return err
		}
	}
	_, err = out.Write(enc)
	return err
}

// referenceSection compares sustained soak throughput against the
// sequential single-request loopback benchmark in BENCH_serving.json:
// the soak must at least match what one unpipelined client achieves,
// or the front end regressed.
func referenceSection(path string, totals soakTotals) map[string]any {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var ref struct {
		Benchmarks map[string]struct {
			After struct {
				NsPerOp int64 `json:"ns_per_op"`
			} `json:"after"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &ref); err != nil {
		return nil
	}
	b, ok := ref.Benchmarks["BenchmarkServerLocate"]
	if !ok || b.After.NsPerOp == 0 {
		return nil
	}
	seqRPS := float64(time.Second) / float64(b.After.NsPerOp)
	return map[string]any{
		"serving_locate_ns_op":       b.After.NsPerOp,
		"serving_locate_seq_rps":     seqRPS,
		"soak_obs_per_sec":           totals.ObsSec,
		"throughput_vs_seq_baseline": totals.ObsSec / seqRPS,
		"note":                       "baseline is one sequential loopback client (BENCH_serving.json); the soak's concurrent obs/sec must not fall below it",
	}
}

// post issues one request and reports success (2xx).
func post(c *http.Client, url string, body []byte) bool {
	resp, err := c.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode >= 200 && resp.StatusCode < 300
}

// soakBodies are the precomputed request payloads: realistic
// observations captured from the simulation at distinct positions, so
// the server-side scoring work is representative while the client does
// no per-request marshalling.
type soakBodies struct {
	locate [][]byte
	batch  []byte
	ingest [][]byte
}

// soakPositions spreads sampling points through the paper house.
func soakPositions() []geom.Point {
	var pts []geom.Point
	for i := 0; i < 16; i++ {
		pts = append(pts, geom.Pt(4+float64(i*3%40), 4+float64(i*7%28)))
	}
	return pts
}

func buildBodies(batchSize int) (*soakBodies, error) {
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		return nil, err
	}
	sc := sim.NewScanner(env, 977)
	var b soakBodies
	var observations []map[string]float64
	for _, p := range soakPositions() {
		obs := map[string]float64{}
		for _, r := range sc.Capture(p, 8, 0) {
			obs[r.BSSID] = float64(r.RSSI)
		}
		observations = append(observations, obs)
		lb, err := json.Marshal(map[string]any{"observation": obs})
		if err != nil {
			return nil, err
		}
		b.locate = append(b.locate, lb)
		ib, err := json.Marshal(map[string]any{
			"pos":         map[string]float64{"x": p.X, "y": p.Y},
			"observation": obs,
		})
		if err != nil {
			return nil, err
		}
		b.ingest = append(b.ingest, ib)
	}
	var batch []map[string]float64
	for i := 0; i < batchSize; i++ {
		batch = append(batch, observations[i%len(observations)])
	}
	if b.batch, err = json.Marshal(map[string]any{"observations": batch}); err != nil {
		return nil, err
	}
	return &b, nil
}

// startInProcess boots the same serving stack locserved would run —
// paper-house training data, probabilistic locator, live ingest over a
// temp WAL — on a loopback listener, and returns its address plus a
// shutdown func.
func startInProcess() (string, func(), error) {
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		return "", nil, err
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		return "", nil, err
	}
	coll := sim.NewScanner(env, 41).CaptureCollection(grid, 20)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		return "", nil, err
	}
	rebuild := func(db *trainingdb.DB) (*core.Service, error) {
		in, err := core.New(
			core.WithDB(db),
			core.WithAlgorithm(core.AlgoProbabilistic),
			core.WithNames(grid),
		)
		if err != nil {
			return nil, err
		}
		return in.Service, nil
	}
	walDir, err := os.MkdirTemp("", "soak-wal-")
	if err != nil {
		return "", nil, err
	}
	mgr, err := ingest.NewManager(db, rebuild, ingest.Config{
		WALPath: filepath.Join(walDir, "reports.wal"),
	})
	if err != nil {
		os.RemoveAll(walDir)
		return "", nil, err
	}
	srv, err := server.NewLive(mgr, nil)
	if err != nil {
		mgr.Close()
		os.RemoveAll(walDir)
		return "", nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		mgr.Close()
		os.RemoveAll(walDir)
		return "", nil, err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	shutdown := func() {
		hs.Close()
		srv.Close()
		mgr.Close()
		os.RemoveAll(walDir)
	}
	return ln.Addr().String(), shutdown, nil
}
