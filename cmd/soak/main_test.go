package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseMix(t *testing.T) {
	mix, err := parseMix("locate=70,batch=10,track=15,ingest=5")
	if err != nil {
		t.Fatal(err)
	}
	if mix != [numOps]int{70, 10, 15, 5} {
		t.Errorf("mix %v", mix)
	}
	for _, bad := range []string{
		"locate=100,extra=0", // unknown op
		"locate=50",          // doesn't sum to 100
		"locate",             // no percentage
		"locate=-10,batch=110",
	} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("mix %q accepted", bad)
		}
	}
}

func TestSchedule(t *testing.T) {
	mix := [numOps]int{70, 10, 15, 5}
	sched := schedule(mix)
	if len(sched) != 100 {
		t.Fatalf("schedule length %d", len(sched))
	}
	var got [numOps]int
	for _, op := range sched {
		got[op]++
	}
	if got != mix {
		t.Errorf("schedule distributes %v, want %v", got, mix)
	}
	// Interleaved, not clustered: the first four slots cover every op.
	var head [numOps]int
	for _, op := range sched[:numOps] {
		head[op]++
	}
	for op, n := range head {
		if n != 1 {
			t.Errorf("op %s appears %d times in the first %d slots", opNames[op], n, numOps)
		}
	}
}

// TestSoakSmoke runs a short in-process soak end to end and checks the
// report is well-formed: every traffic class served, zero errors, and
// a non-empty allocs/op curve. This is the CI lane that proves the
// harness itself works; the 60-second BENCH_soak.json run uses the
// same code path.
func TestSoakSmoke(t *testing.T) {
	outPath := filepath.Join(t.TempDir(), "soak.json")
	var buf bytes.Buffer
	err := run([]string{
		"-duration", "2s", "-qps", "300", "-workers", "2",
		"-window", "500ms", "-out", outPath, "-ref", "",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep soakReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Totals.Errors != 0 {
		t.Errorf("%d errored requests", rep.Totals.Errors)
	}
	if rep.Totals.Requests == 0 || rep.Totals.Observations < rep.Totals.Requests {
		t.Errorf("implausible totals: %+v", rep.Totals)
	}
	for _, op := range opNames {
		r, ok := rep.Routes[op]
		if !ok {
			t.Errorf("route %s missing from report", op)
			continue
		}
		m := r.(map[string]any)
		if m["count"].(float64) == 0 {
			t.Errorf("route %s served no requests", op)
		}
		if m["p50_us"].(float64) <= 0 || m["p99_us"].(float64) < m["p50_us"].(float64) {
			t.Errorf("route %s quantiles implausible: %v", op, m)
		}
	}
	if len(rep.Windows) == 0 {
		t.Error("no allocs/op windows sampled")
	}
	for _, w := range rep.Windows {
		if w.Requests > 0 && w.AllocsPerOp <= 0 {
			t.Errorf("window at %.1fs has requests but no alloc accounting", w.TS)
		}
	}
}

// TestSoakFollowSmoke runs the replication fleet mode end to end at CI
// size: one trainer, two followers, a small preload, two seconds of
// steady state and sub-second capacity slices. It asserts the claims
// BENCH_repl.json documents — every follower bootstraps exactly once
// and ends streaming at the trainer's generation, steady-state traffic
// sees zero errors, and two followers' summed saturated throughput
// clears 1.8× a single node — and it must finish well inside the
// 60-second CI allowance.
func TestSoakFollowSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a 3-node fleet; skipped in -short")
	}
	outPath := filepath.Join(t.TempDir(), "repl.json")
	var buf bytes.Buffer
	err := run([]string{
		"-followers", "2", "-duration", "2s", "-workers", "2",
		"-preload", "300", "-reports-qps", "100", "-locate-qps", "200",
		"-cap-slice", "750ms", "-out", outPath,
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep followReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if len(rep.ColdCatchup) != 2 {
		t.Fatalf("%d cold catch-up records, want 2", len(rep.ColdCatchup))
	}
	for _, c := range rep.ColdCatchup {
		if c.Seconds <= 0 || c.HeadSeq < 300 {
			t.Errorf("implausible catch-up record: %+v", c)
		}
	}
	ss := rep.SteadyState
	if ss.Reports == 0 || ss.ReportErrors != 0 || ss.LocateErrors != 0 {
		t.Errorf("steady state not clean: %+v", ss)
	}
	if ss.LagSamples == 0 {
		t.Error("no lag samples collected")
	}
	if ss.Trainer.Count == 0 || ss.Follower.Count == 0 ||
		ss.Trainer.P50us <= 0 || ss.Follower.P50us <= 0 {
		t.Errorf("locate latency records implausible: trainer %+v follower %+v", ss.Trainer, ss.Follower)
	}
	if rep.Capacity.SingleRPS <= 0 || len(rep.Capacity.PerFollower) != 2 {
		t.Fatalf("implausible capacity record: %+v", rep.Capacity)
	}
	// The acceptance bar: two read replicas together must beat 1.8× one
	// node. They run the same serving stack measured sequentially, so
	// anything below that means replication taxed the hot path.
	if rep.Capacity.Scaling < 1.8 {
		t.Errorf("fleet scaling %.2f× vs single node, want ≥ 1.8×", rep.Capacity.Scaling)
	}
	for _, f := range rep.Followers {
		if f.State != "streaming" || f.Bootstraps != 1 || f.Folded == 0 {
			t.Errorf("follower %d ended unhealthy: %+v", f.Follower, f)
		}
	}
	if rep.Followers[0].Generation != rep.Followers[1].Generation {
		t.Errorf("followers ended at different generations: %d vs %d",
			rep.Followers[0].Generation, rep.Followers[1].Generation)
	}
}

func TestSoakFlagErrors(t *testing.T) {
	var buf bytes.Buffer
	for _, args := range [][]string{
		{"-duration", "0s"},
		{"-workers", "0"},
		{"-batch-size", "0"},
		{"-mix", "locate=50"},
		{"-venues-budget", "1024"},          // needs -venues
		{"-venues", "10", "-zipf-s", "1.0"}, // zipf skew must exceed 1
		{"-followers", "2", "-preload", "0"},
		{"-followers", "2", "-reports-qps", "0"},
		{"-followers", "1", "-venues", "5"}, // mutually exclusive modes
	} {
		if err := run(args, &buf); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestSoakVenuesSmoke runs the city-scale mode end to end at CI size:
// 100 venues, a budget tight enough that the zipf tail forces
// evictions, a few seconds of traffic. It asserts the three claims
// BENCH_venues.json documents at 1000 venues — errors stay zero while
// venues churn, the resident set respects the LRU budget, and
// evictions actually happened — and it must finish well inside the
// 60-second CI allowance, generation included.
func TestSoakVenuesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("city generation is seconds of work; skipped in -short")
	}
	outPath := filepath.Join(t.TempDir(), "venues.json")
	var buf bytes.Buffer
	err := run([]string{
		"-venues", "100", "-duration", "3s", "-workers", "4",
		"-out", outPath, "-seed", "7",
	}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep venueReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if rep.Config.Venues != 100 {
		t.Errorf("generated %d venues, want 100", rep.Config.Venues)
	}
	if rep.SteadyState.Errors != 0 {
		t.Errorf("%d errored requests", rep.SteadyState.Errors)
	}
	if rep.SteadyState.Requests == 0 || rep.SteadyState.RequestsSec <= 0 {
		t.Errorf("implausible steady state: %+v", rep.SteadyState)
	}
	if rep.SteadyState.DistinctHit < 2 {
		t.Errorf("zipf traffic hit only %d venues", rep.SteadyState.DistinctHit)
	}
	if rep.ColdLoad.Loads == 0 || rep.ColdLoad.LoadErrors != 0 || rep.ColdLoad.P99us <= 0 {
		t.Errorf("implausible cold-load record: %+v", rep.ColdLoad)
	}
	if rep.Memory.Evictions == 0 {
		t.Error("no evictions under a quarter-city budget; LRU not exercised")
	}
	if rep.Memory.ResidentEndBytes > rep.Memory.BudgetBytes {
		t.Errorf("resident %d bytes ended above the %d budget",
			rep.Memory.ResidentEndBytes, rep.Memory.BudgetBytes)
	}
}
