package main

// Replication fleet mode: one in-process trainer with -followers N
// read replicas attached over loopback HTTP. The run measures the
// three numbers BENCH_repl.json documents:
//
//   - cold catch-up: how long a fresh follower takes to bootstrap from
//     the snapshot payload and reach the trainer's WAL head after the
//     trainer has already folded -preload reports;
//   - steady-state lag: while reports stream into the trainer and
//     locate traffic hits every node, how far behind (sequences, bytes,
//     seconds) each follower falls, sampled continuously;
//   - fleet capacity: saturated /locate throughput of the trainer alone
//     and of each follower, measured sequentially (the container is
//     single-CPU — concurrent measurement would just split one core),
//     with the fleet figure the sum over followers.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/ingest"
	"indoorloc/internal/metrics"
	"indoorloc/internal/repl"
	"indoorloc/internal/server"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

type followSoakOpts struct {
	followers  int
	preload    int           // reports folded before the first follower starts
	duration   time.Duration // steady-state phase length
	capSlice   time.Duration // per-node saturated capacity slice (0 = derive)
	workers    int
	reportsQPS float64 // trainer ingest rate during steady state
	locateQPS  float64 // per-node paced locate rate during steady state
	mapEntries int     // 0 = paper house; else a synthetic map this large
	mapAPs     int     // APs for the synthetic map (0 = 8)
	outPath    string
}

type followReport struct {
	Description string          `json:"description"`
	Date        string          `json:"date"`
	Config      followConfig    `json:"config"`
	ColdCatchup []catchupRec    `json:"cold_catchup"`
	SteadyState followSteady    `json:"steady_state"`
	Capacity    followCapacity  `json:"capacity"`
	Followers   []followerFinal `json:"followers"`
}

type followConfig struct {
	Followers  int     `json:"followers"`
	Preload    int     `json:"preload_reports"`
	Duration   string  `json:"duration"`
	Workers    int     `json:"workers"`
	ReportsQPS float64 `json:"reports_qps"`
	LocateQPS  float64 `json:"locate_qps_per_node"`
	MapEntries int     `json:"map_entries,omitempty"`
	MapAPs     int     `json:"map_aps,omitempty"`
}

type catchupRec struct {
	Follower int     `json:"follower"`
	Seconds  float64 `json:"seconds"`
	HeadSeq  uint64  `json:"head_seq"`
}

type followSteady struct {
	Reports       uint64  `json:"reports"`
	ReportErrors  uint64  `json:"report_errors"`
	LocateErrors  uint64  `json:"locate_errors"`
	LagSamples    int     `json:"lag_samples"`
	MaxLagSeqs    uint64  `json:"max_lag_seqs"`
	MeanLagSeqs   float64 `json:"mean_lag_seqs"`
	MaxLagBytes   int64   `json:"max_lag_bytes"`
	MaxLagSeconds float64 `json:"max_lag_seconds"`
	Trainer       nodeLat `json:"trainer_locate"`
	Follower      nodeLat `json:"follower_locate"`
}

type nodeLat struct {
	Count  uint64 `json:"count"`
	P50us  int64  `json:"p50_us"`
	P99us  int64  `json:"p99_us"`
	P999us int64  `json:"p999_us"`
}

type followCapacity struct {
	SliceS      float64   `json:"slice_s"`
	SingleRPS   float64   `json:"single_node_rps"`
	PerFollower []float64 `json:"per_follower_rps"`
	FleetRPS    float64   `json:"fleet_rps"`
	Scaling     float64   `json:"scaling_vs_single"`
	Note        string    `json:"note"`
}

type followerFinal struct {
	Follower   int    `json:"follower"`
	Generation uint64 `json:"generation"`
	State      string `json:"state"`
	Bootstraps uint64 `json:"bootstraps"`
	Reconnects uint64 `json:"reconnects"`
	Folded     uint64 `json:"folded"`
}

// followNode is one running read replica: the repl.Follower plus the
// serving front end listening on loopback.
type followNode struct {
	fol  *repl.Follower
	srv  *server.Server
	hs   *http.Server
	base string
}

func (n *followNode) close() {
	n.hs.Close()
	n.srv.Close()
	n.fol.Close()
}

func runFollow(o followSoakOpts, out io.Writer) error {
	if o.followers <= 0 || o.workers <= 0 || o.duration <= 0 || o.preload <= 0 {
		return errors.New("-followers, -workers, -duration and -preload must be positive")
	}
	if o.reportsQPS <= 0 || o.locateQPS <= 0 {
		return errors.New("-reports-qps and -locate-qps must be positive")
	}
	capSlice := o.capSlice
	if capSlice <= 0 {
		capSlice = o.duration / 2
		if capSlice < 500*time.Millisecond {
			capSlice = 500 * time.Millisecond
		}
		if capSlice > 5*time.Second {
			capSlice = 5 * time.Second
		}
	}

	// Trainer: the standard in-process stack plus a replication source.
	// The paper house is the default fixture; -map-entries swaps in a
	// synthetic campus-scale map (with a slower publish cadence — a
	// recompile there is ~a second of work, not microseconds).
	db, rebuild, bodies, build, err := buildFollowFixture(o.mapEntries, o.mapAPs)
	if err != nil {
		return err
	}
	flushReports, flushInterval := 64, 100*time.Millisecond
	if o.mapEntries > 0 {
		flushReports, flushInterval = 4096, 2*time.Second
	}
	walDir, err := os.MkdirTemp("", "soak-repl-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	src := repl.NewSource(repl.SourceConfig{Heartbeat: 250 * time.Millisecond})
	mgr, err := ingest.NewManager(db, rebuild, ingest.Config{
		WALPath:       filepath.Join(walDir, "reports.wal"),
		QueueDepth:    16384,
		FlushReports:  flushReports,
		FlushInterval: flushInterval,
		OnPublish:     src.OnPublish,
	})
	if err != nil {
		return err
	}
	defer mgr.Close()
	src.Bind(mgr)
	trainerSrv, err := server.NewLive(mgr, nil, server.WithReplicationSource(src))
	if err != nil {
		return err
	}
	defer trainerSrv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	trainerHS := &http.Server{Handler: trainerSrv}
	go trainerHS.Serve(ln)
	defer trainerHS.Close()
	trainerBase := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        o.workers * (o.followers + 2),
		MaxIdleConnsPerHost: o.workers * 2,
	}}

	// Preload: fold a corpus before any follower exists, so cold
	// catch-up measures snapshot transfer + residual WAL replay over a
	// non-trivial map, not an empty bootstrap.
	fmt.Fprintf(out, "soak: preloading %d reports into the trainer...\n", o.preload)
	for i := 0; i < o.preload; i++ {
		ok := false
		for try := 0; try < 50 && !ok; try++ { // 429 backpressure: wait out a recompile
			if ok = post(client, trainerBase+"/train/report", bodies.ingest[i%len(bodies.ingest)]); !ok {
				time.Sleep(100 * time.Millisecond)
			}
		}
		if !ok {
			return fmt.Errorf("preload report %d rejected", i)
		}
	}
	if err := waitUntil(30*time.Second, func() bool {
		return mgr.Stats().Folded >= uint64(o.preload)
	}); err != nil {
		return fmt.Errorf("trainer never folded the preload: %w", err)
	}

	// Cold catch-up: start each follower against the preloaded trainer
	// and time bootstrap → caught-up-at-head.
	var nodes []*followNode
	defer func() {
		for _, n := range nodes {
			n.close()
		}
	}()
	var catchups []catchupRec
	for i := 0; i < o.followers; i++ {
		t0 := time.Now()
		names := repl.NamesFromEntries
		if o.mapEntries > 0 {
			// The synthetic trainer serves without a name map; match it,
			// both for response identity and because the nearest-name
			// scan is O(entries) per locate on a 100k-entry map.
			names = repl.NamesNone
		}
		fol, err := repl.NewFollower(repl.FollowerConfig{
			TrainerURL:   trainerBase,
			Build:        build,
			Names:        names,
			ReconnectMin: 50 * time.Millisecond,
			ReconnectMax: time.Second,
		})
		if err != nil {
			return err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		err = fol.Start(ctx)
		cancel()
		if err != nil {
			return err
		}
		if err := waitUntil(30*time.Second, func() bool {
			st := fol.Stats()
			return st.State == repl.StateStreaming && st.AppliedSeq == mgr.WAL().Seq()
		}); err != nil {
			fol.Close()
			return fmt.Errorf("follower %d never caught up: %w", i, err)
		}
		elapsed := time.Since(t0)
		fsrv, err := server.NewFollower(fol, nil)
		if err != nil {
			fol.Close()
			return err
		}
		fln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fsrv.Close()
			fol.Close()
			return err
		}
		hs := &http.Server{Handler: fsrv}
		go hs.Serve(fln)
		nodes = append(nodes, &followNode{fol: fol, srv: fsrv, hs: hs, base: "http://" + fln.Addr().String()})
		catchups = append(catchups, catchupRec{
			Follower: i,
			Seconds:  elapsed.Seconds(),
			HeadSeq:  mgr.WAL().Seq(),
		})
		fmt.Fprintf(out, "soak: follower %d cold catch-up %.3fs (head %d)\n", i, elapsed.Seconds(), mgr.WAL().Seq())
	}

	// Steady state: a report writer streams into the trainer while
	// paced locate traffic hits the trainer and every follower; a
	// sampler tracks replication lag the whole time.
	fmt.Fprintf(out, "soak: steady state for %s (%g reports/s, %g locates/s per node)...\n",
		o.duration, o.reportsQPS, o.locateQPS)
	var (
		steady       followSteady
		trainerHist  metrics.Histogram
		followerHist metrics.Histogram
		trainerN     atomic.Uint64
		followerN    atomic.Uint64
		locateErrs   atomic.Uint64
		reports      atomic.Uint64
		reportErrs   atomic.Uint64
	)
	stop := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // report writer
		defer wg.Done()
		interval := time.Duration(float64(time.Second) / o.reportsQPS)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		i := 0
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
			}
			if post(client, trainerBase+"/train/report", bodies.ingest[i%len(bodies.ingest)]) {
				reports.Add(1)
			} else {
				reportErrs.Add(1)
			}
			i++
		}
	}()

	targets := []string{trainerBase}
	for _, n := range nodes {
		targets = append(targets, n.base)
	}
	for ti, target := range targets {
		wg.Add(1)
		go func(ti int, target string) { // paced locate loop per node
			defer wg.Done()
			interval := time.Duration(float64(time.Second) / o.locateQPS)
			tick := time.NewTicker(interval)
			defer tick.Stop()
			i := ti
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
				}
				body := bodies.locate[i%len(bodies.locate)]
				i++
				t0 := time.Now()
				ok := post(client, target+"/locate", body)
				d := time.Since(t0)
				if !ok {
					locateErrs.Add(1)
					continue
				}
				if ti == 0 {
					trainerHist.Observe(d)
					trainerN.Add(1)
				} else {
					followerHist.Observe(d)
					followerN.Add(1)
				}
			}
		}(ti, target)
	}

	var lagSum float64
	sampler := time.NewTicker(100 * time.Millisecond)
	steadyDeadline := time.Now().Add(o.duration)
	for time.Now().Before(steadyDeadline) {
		<-sampler.C
		for _, n := range nodes {
			st := n.fol.Stats()
			steady.LagSamples++
			lagSum += float64(st.LagSeqs)
			if st.LagSeqs > steady.MaxLagSeqs {
				steady.MaxLagSeqs = st.LagSeqs
			}
			if st.LagBytes > steady.MaxLagBytes {
				steady.MaxLagBytes = st.LagBytes
			}
			if st.LagSeconds > steady.MaxLagSeconds {
				steady.MaxLagSeconds = st.LagSeconds
			}
		}
	}
	sampler.Stop()
	close(stop)
	wg.Wait()
	if steady.LagSamples > 0 {
		steady.MeanLagSeqs = lagSum / float64(steady.LagSamples)
	}
	steady.Reports = reports.Load()
	steady.ReportErrors = reportErrs.Load()
	steady.LocateErrors = locateErrs.Load()
	steady.Trainer = nodeLat{
		Count:  trainerN.Load(),
		P50us:  trainerHist.Quantile(0.50).Microseconds(),
		P99us:  trainerHist.Quantile(0.99).Microseconds(),
		P999us: trainerHist.Quantile(0.999).Microseconds(),
	}
	steady.Follower = nodeLat{
		Count:  followerN.Load(),
		P50us:  followerHist.Quantile(0.50).Microseconds(),
		P99us:  followerHist.Quantile(0.99).Microseconds(),
		P999us: followerHist.Quantile(0.999).Microseconds(),
	}

	// Let the fleet drain to the head before measuring capacity, so no
	// fold work competes with the locate loops.
	if err := waitUntil(30*time.Second, func() bool {
		head := mgr.WAL().Seq()
		for _, n := range nodes {
			st := n.fol.Stats()
			if st.State != repl.StateStreaming || st.AppliedSeq != head {
				return false
			}
		}
		return true
	}); err != nil {
		return fmt.Errorf("fleet never drained after steady state: %w", err)
	}

	// The WAL draining is not quiescence: the trainer's final
	// FlushInterval tick can land a recompile (and, via its publish
	// note, one per follower) seconds after the last report, and on a
	// 100k-entry map that is ~1s of CPU that would skew whichever
	// capacity slice it falls into. Wait until every node's serving
	// generation is identical and has stayed put for a full flush
	// interval's worth of polls.
	var lastGen uint64
	stableSince := time.Now()
	if err := waitUntil(30*time.Second, func() bool {
		gen := mgr.Registry().Current().Generation
		for _, n := range nodes {
			if n.fol.Stats().Generation != gen {
				return false
			}
		}
		if gen != lastGen {
			lastGen, stableSince = gen, time.Now()
			return false
		}
		return time.Since(stableSince) >= flushInterval+500*time.Millisecond
	}); err != nil {
		return fmt.Errorf("fleet generations never settled after steady state: %w", err)
	}

	// Capacity: saturated locate throughput, one node at a time.
	fmt.Fprintf(out, "soak: capacity slices (%s each, %d workers)...\n", capSlice, o.workers)
	cap_ := followCapacity{
		SliceS: capSlice.Seconds(),
		Note:   "single-CPU container: per-node saturation measured sequentially; fleet_rps is the sum over followers",
	}
	runtime.GC() // pay the steady phase's GC debt outside the slices
	cap_.SingleRPS = saturate(client, trainerBase+"/locate", bodies.locate, o.workers, capSlice)
	for i, n := range nodes {
		runtime.GC()
		rps := saturate(client, n.base+"/locate", bodies.locate, o.workers, capSlice)
		cap_.PerFollower = append(cap_.PerFollower, rps)
		cap_.FleetRPS += rps
		fmt.Fprintf(out, "soak: follower %d saturated at %.0f locates/s\n", i, rps)
	}
	if cap_.SingleRPS > 0 {
		cap_.Scaling = cap_.FleetRPS / cap_.SingleRPS
	}

	report := followReport{
		Description: "Replication fleet soak: one trainer, N followers over loopback HTTP; cold catch-up, steady-state replication lag under live ingest, and sequentially-measured saturated locate capacity.",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Config: followConfig{
			Followers: o.followers, Preload: o.preload, Duration: o.duration.String(),
			Workers: o.workers, ReportsQPS: o.reportsQPS, LocateQPS: o.locateQPS,
			MapEntries: o.mapEntries, MapAPs: o.mapAPs,
		},
		ColdCatchup: catchups,
		SteadyState: steady,
		Capacity:    cap_,
	}
	for i, n := range nodes {
		st := n.fol.Stats()
		report.Followers = append(report.Followers, followerFinal{
			Follower: i, Generation: st.Generation, State: st.State,
			Bootstraps: st.Bootstraps, Reconnects: st.Reconnects, Folded: st.Folded,
		})
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if o.outPath != "" {
		if err := os.WriteFile(o.outPath, enc, 0o644); err != nil {
			return err
		}
	}
	_, err = out.Write(enc)
	return err
}

// saturate drives unpaced POSTs at url with the given worker count for
// one slice and returns requests/sec (successful only).
func saturate(client *http.Client, url string, bodies [][]byte, workers int, slice time.Duration) float64 {
	var n atomic.Uint64
	start := time.Now()
	deadline := start.Add(slice)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := w
			for time.Now().Before(deadline) {
				if post(client, url, bodies[i%len(bodies)]) {
					n.Add(1)
				}
				i++
			}
		}(w)
	}
	wg.Wait()
	return float64(n.Load()) / time.Since(start).Seconds()
}

// buildFollowFixture assembles the replication soak's training DB,
// rebuild func, request bodies and locator build config (the follower
// mirrors it for answer-identical serving). mapEntries == 0 gives the
// paper house (the fixture every other soak mode uses); a positive
// count gives a synthetic campus-scale map — served quantized with
// top-k ranking, the v2 configuration a fleet would actually run —
// so cold catch-up and recompile cost are measured at realistic map
// sizes.
func buildFollowFixture(mapEntries, mapAPs int) (*trainingdb.DB, func(*trainingdb.DB) (*core.Service, error), *soakBodies, core.BuildConfig, error) {
	if mapEntries == 0 {
		var build core.BuildConfig
		scen := sim.PaperHouse()
		env, err := scen.Environment()
		if err != nil {
			return nil, nil, nil, build, err
		}
		grid, err := scen.TrainingPoints()
		if err != nil {
			return nil, nil, nil, build, err
		}
		coll := sim.NewScanner(env, 41).CaptureCollection(grid, 20)
		db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
		if err != nil {
			return nil, nil, nil, build, err
		}
		rebuild := func(db *trainingdb.DB) (*core.Service, error) {
			in, err := core.New(
				core.WithDB(db),
				core.WithAlgorithm(core.AlgoProbabilistic),
				core.WithNames(grid),
			)
			if err != nil {
				return nil, err
			}
			return in.Service, nil
		}
		bodies, err := buildBodies(8)
		return db, rebuild, bodies, build, err
	}

	if mapAPs == 0 {
		mapAPs = 8
	}
	heard := mapAPs / 2
	if heard < 1 {
		heard = 1
	}
	// Unquantized on purpose: a replication source must publish float64
	// matrices (repl.BuildReplica reconstructs the replica from them);
	// TopK still bounds ranking so a 100k-entry locate stays sane.
	build := core.BuildConfig{TopK: 8}
	rng := rand.New(rand.NewSource(30))
	db := &trainingdb.DB{Entries: make(map[string]*trainingdb.Entry, mapEntries)}
	db.BSSIDs = make([]string, mapAPs)
	for a := range db.BSSIDs {
		db.BSSIDs[a] = fmt.Sprintf("fe:ed:00:00:%02x:%02x", a/256, a%256)
	}
	cols := (mapEntries + 39) / 40
	for e := 0; e < mapEntries; e++ {
		name := fmt.Sprintf("pt-%06d", e)
		ent := &trainingdb.Entry{
			Name:  name,
			Pos:   geom.Pt(float64(e%cols)*5, float64(e/cols)*5),
			PerAP: make(map[string]*trainingdb.APStats, heard),
		}
		first := (e * 7) % (mapAPs - heard + 1)
		for a := first; a < first+heard; a++ {
			ent.PerAP[db.BSSIDs[a]] = &trainingdb.APStats{
				BSSID: db.BSSIDs[a], N: 20,
				Mean:   -45 - rng.Float64()*40,
				StdDev: 2 + rng.Float64()*4,
			}
		}
		db.Entries[name] = ent
	}
	rebuild := func(db *trainingdb.DB) (*core.Service, error) {
		in, err := core.New(
			core.WithDB(db),
			core.WithAlgorithm(core.AlgoProbabilistic),
			core.WithConfig(build),
		)
		if err != nil {
			return nil, err
		}
		return in.Service, nil
	}

	// Bodies: locate observations near existing entries' means; ingest
	// reports reinforce existing entries by name, so the map's shape
	// (and so recompile cost) stays fixed while the cells keep moving.
	var b soakBodies
	for i := 0; i < 16; i++ {
		ent := db.Entries[fmt.Sprintf("pt-%06d", i*(mapEntries/16))]
		obs := make(map[string]float64, len(ent.PerAP))
		for bssid, st := range ent.PerAP {
			obs[bssid] = st.Mean + rng.NormFloat64()*st.StdDev
		}
		lb, err := json.Marshal(map[string]any{"observation": obs})
		if err != nil {
			return nil, nil, nil, build, err
		}
		b.locate = append(b.locate, lb)
	}
	for i := 0; i < 64; i++ {
		ent := db.Entries[fmt.Sprintf("pt-%06d", i*(mapEntries/64))]
		obs := make(map[string]float64, len(ent.PerAP))
		for bssid, st := range ent.PerAP {
			obs[bssid] = st.Mean + rng.NormFloat64()*st.StdDev
		}
		ib, err := json.Marshal(map[string]any{"name": ent.Name, "observation": obs})
		if err != nil {
			return nil, nil, nil, build, err
		}
		b.ingest = append(b.ingest, ib)
	}
	return db, rebuild, &b, build, nil
}

// waitUntil polls cond every 2ms until true or the timeout lapses.
func waitUntil(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return errors.New("condition not met in time")
}
