package main

// The -venues mode: a city-scale soak of the multi-venue registry.
// It generates N synthetic venues as compiled v2 artifacts (the
// internal/sim city fixture), boots an in-process multi-venue server
// under a fixed LRU memory budget, and drives zipf-distributed locate
// traffic across every venue — a few venues hot, a long tail cold —
// over real loopback HTTP. BENCH_venues.json, its output, is the
// evidence for the registry's three load-bearing claims: cold loads
// are cheap (artifact mmap, no compilation), residency stays under the
// budget while the long tail churns through the LRU, and steady-state
// throughput on resident venues holds up while evictions happen
// underneath.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/geom"
	"indoorloc/internal/metrics"
	"indoorloc/internal/server"
	"indoorloc/internal/sim"
	"indoorloc/internal/venue"
)

// venueSoakOpts parameterizes one city soak run.
type venueSoakOpts struct {
	venues   int           // city size (campuses; one floor each)
	budget   int64         // LRU budget in bytes (0 = quarter of the city)
	duration time.Duration // traffic phase length
	workers  int
	qps      float64 // 0 = unpaced
	zipfS    float64 // zipf skew; must be > 1
	seed     int64
	outPath  string
	dir      string // artifact dir ("" = temp, removed after)
}

type venueReport struct {
	Description string            `json:"description"`
	Date        string            `json:"date"`
	Config      venueReportConfig `json:"config"`
	Generate    venueGenRec       `json:"generate"`
	ColdLoad    venueColdRec      `json:"cold_load"`
	SteadyState venueSteadyRec    `json:"steady_state"`
	Memory      venueMemRec       `json:"memory"`
}

type venueReportConfig struct {
	Venues      int     `json:"venues"`
	BudgetBytes int64   `json:"budget_bytes"`
	Duration    string  `json:"duration"`
	Workers     int     `json:"workers"`
	QPS         float64 `json:"qps"`
	ZipfS       float64 `json:"zipf_s"`
	Seed        int64   `json:"seed"`
}

type venueGenRec struct {
	Seconds       float64 `json:"seconds"`
	ArtifactBytes int64   `json:"artifact_bytes_total"`
	MeanBytes     int64   `json:"artifact_bytes_mean"`
}

type venueColdRec struct {
	Loads      uint64 `json:"loads"`
	LoadErrors uint64 `json:"load_errors"`
	P50us      int64  `json:"p50_us"`
	P99us      int64  `json:"p99_us"`
}

type venueSteadyRec struct {
	DurationS   float64 `json:"duration_s"`
	Requests    uint64  `json:"requests"`
	Errors      uint64  `json:"errors"`
	RequestsSec float64 `json:"requests_per_sec"`
	P50us       int64   `json:"p50_us"`
	P99us       int64   `json:"p99_us"`
	DistinctHit int     `json:"distinct_venues_hit"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type venueMemRec struct {
	BudgetBytes      int64  `json:"budget_bytes"`
	ResidentMaxBytes int64  `json:"resident_bytes_max"`
	ResidentEndBytes int64  `json:"resident_bytes_end"`
	Evictions        uint64 `json:"evictions"`
	LoadedEnd        int    `json:"venues_loaded_end"`
}

// runVenues executes the city soak and writes the report.
func runVenues(opts venueSoakOpts, out io.Writer) error {
	if opts.venues <= 0 || opts.workers <= 0 || opts.duration <= 0 {
		return errors.New("-venues, -workers and -duration must be positive")
	}
	if opts.zipfS <= 1 {
		return errors.New("-zipf-s must be > 1")
	}

	dir := opts.dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "soak-city-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	cfg := sim.CityConfig{Campuses: opts.venues, Floors: 1, Seed: opts.seed}
	t0 := time.Now()
	ids, err := sim.WriteArtifacts(dir, cfg)
	if err != nil {
		return err
	}
	genSecs := time.Since(t0).Seconds()
	var totalBytes int64
	for _, id := range ids {
		fi, err := os.Stat(filepath.Join(dir, id+".ilr"))
		if err != nil {
			return err
		}
		totalBytes += fi.Size()
	}
	budget := opts.budget
	if budget <= 0 {
		// A quarter of the city: the zipf head stays resident, the tail
		// churns — evictions are guaranteed, not incidental.
		budget = totalBytes / 4
	}

	vr, err := venue.NewRegistry(venue.Config{
		Dir:       dir,
		Algorithm: core.AlgoProbabilistic,
		MaxBytes:  budget,
	})
	if err != nil {
		return err
	}
	srv, err := server.NewMultiVenue(vr, nil)
	if err != nil {
		vr.Close()
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		vr.Close()
		return err
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer func() {
		hs.Close()
		srv.Close()
		vr.Close()
	}()
	base := "http://" + ln.Addr().String()

	bodies, err := buildVenueBodies(cfg, ids)
	if err != nil {
		return err
	}
	paths := make([]string, len(ids))
	for i, id := range ids {
		paths[i] = "/v1/venues/" + id + "/locate"
	}

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        opts.workers * 2,
		MaxIdleConnsPerHost: opts.workers * 2,
	}}

	var (
		hist     metrics.Histogram // Observe is wait-free; shared across workers
		requests atomic.Uint64
		errCount atomic.Uint64
		hits     = make([]atomic.Uint64, len(ids))
	)
	interval := time.Duration(0)
	if opts.qps > 0 {
		interval = time.Duration(float64(opts.workers) * float64(time.Second) / opts.qps)
	}

	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	residentMax := int64(0)
	start := time.Now()
	deadline := start.Add(opts.duration)
	stopGauge := make(chan struct{})
	var gaugeWG sync.WaitGroup
	gaugeWG.Add(1)
	go func() { // residency high-water mark under the LRU budget
		defer gaugeWG.Done()
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stopGauge:
				return
			case <-tick.C:
			}
			if rb := vr.Stats().ResidentBytes; rb > residentMax {
				residentMax = rb
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < opts.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opts.seed + int64(w)*7919))
			zipf := rand.NewZipf(rng, opts.zipfS, 1, uint64(len(ids)-1))
			next := time.Now()
			for time.Now().Before(deadline) {
				if interval > 0 {
					if now := time.Now(); now.Before(next) {
						time.Sleep(next.Sub(now))
					}
					next = next.Add(interval)
					if time.Since(next) > time.Second {
						next = time.Now()
					}
				}
				idx := int(zipf.Uint64())
				t0 := time.Now()
				ok := post(client, base+paths[idx], bodies[idx])
				hist.Observe(time.Since(t0))
				requests.Add(1)
				hits[idx].Add(1)
				if !ok {
					errCount.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopGauge)
	gaugeWG.Wait()
	elapsed := time.Since(start)
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)

	distinct := 0
	for i := range hits {
		if hits[i].Load() > 0 {
			distinct++
		}
	}
	stats := vr.Stats()
	if stats.ResidentBytes > residentMax {
		residentMax = stats.ResidentBytes
	}
	totalReq := requests.Load()
	allocsPerOp := 0.0
	if totalReq > 0 {
		allocsPerOp = float64(msAfter.Mallocs-msBefore.Mallocs) / float64(totalReq)
	}

	report := venueReport{
		Description: "City-scale multi-venue soak: zipf locate traffic across every venue of a synthetic city served from compiled artifacts under a fixed LRU memory budget. Cold-load quantiles are registry-side (mmap open to first snapshot); latency quantiles are client-observed over loopback HTTP.",
		Date:        time.Now().UTC().Format("2006-01-02"),
		Config: venueReportConfig{
			Venues: len(ids), BudgetBytes: budget, Duration: opts.duration.String(),
			Workers: opts.workers, QPS: opts.qps, ZipfS: opts.zipfS, Seed: opts.seed,
		},
		Generate: venueGenRec{
			Seconds:       genSecs,
			ArtifactBytes: totalBytes,
			MeanBytes:     totalBytes / int64(len(ids)),
		},
		ColdLoad: venueColdRec{
			Loads:      stats.Loads,
			LoadErrors: stats.LoadErrors,
			P50us:      stats.ColdLoadP50.Microseconds(),
			P99us:      stats.ColdLoadP99.Microseconds(),
		},
		SteadyState: venueSteadyRec{
			DurationS:   elapsed.Seconds(),
			Requests:    totalReq,
			Errors:      errCount.Load(),
			RequestsSec: float64(totalReq) / elapsed.Seconds(),
			P50us:       hist.Quantile(0.50).Microseconds(),
			P99us:       hist.Quantile(0.99).Microseconds(),
			DistinctHit: distinct,
			AllocsPerOp: allocsPerOp,
		},
		Memory: venueMemRec{
			BudgetBytes:      budget,
			ResidentMaxBytes: residentMax,
			ResidentEndBytes: stats.ResidentBytes,
			Evictions:        stats.Evictions,
			LoadedEnd:        stats.Loaded,
		},
	}
	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if opts.outPath != "" {
		if err := os.WriteFile(opts.outPath, enc, 0o644); err != nil {
			return err
		}
	}
	_, err = out.Write(enc)
	return err
}

// buildVenueBodies precomputes one locate payload per venue, captured
// from that venue's own simulation (BSSIDs are venue-unique, so bodies
// cannot be shared). The capture point sits mid-floor, inside every
// venue's outline regardless of its campus-dependent width.
func buildVenueBodies(cfg sim.CityConfig, ids []string) ([][]byte, error) {
	bodies := make([][]byte, len(ids))
	for i := range ids {
		s := sim.CityScenario(i, 0)
		env, err := s.Environment()
		if err != nil {
			return nil, fmt.Errorf("venue %s: %w", ids[i], err)
		}
		sc := sim.NewScanner(env, cfg.Seed+int64(i)+999983)
		obs := map[string]float64{}
		for _, r := range sc.Capture(geom.Pt(18, 15), 6, 0) {
			obs[r.BSSID] = float64(r.RSSI)
		}
		b, err := json.Marshal(map[string]any{"observation": obs})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}
	return bodies, nil
}
