package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

// buildArtifacts trains the paper house and writes train.tdb plus one
// observation wi-scan, returning their paths and the truth position
// name.
func buildArtifacts(t *testing.T) (dbPath, obsPath string, apArgs []string) {
	t.Helper()
	dir := t.TempDir()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	lm, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	sc := sim.NewScanner(env, 13)
	coll := sc.CaptureCollection(lm, 15)
	db, _, err := trainingdb.Generate(coll, lm, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dbPath = filepath.Join(dir, "train.tdb")
	if err := trainingdb.SaveFile(dbPath, db); err != nil {
		t.Fatal(err)
	}
	obsPath = filepath.Join(dir, "obs.wiscan")
	fh, err := os.Create(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	f := &wiscan.File{Location: "obs", Records: sc.Capture(scen.TestPoints[5], 10, 0)}
	if err := wiscan.Write(fh, f); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	for _, ap := range scen.APs {
		apArgs = append(apArgs, "-ap", fmt.Sprintf("%s@%g,%g", ap.BSSID, ap.Pos.X, ap.Pos.Y))
	}
	return dbPath, obsPath, apArgs
}

func TestLocateProbabilistic(t *testing.T) {
	dbPath, obsPath, _ := buildArtifacts(t)
	var out bytes.Buffer
	if err := run([]string{"-db", dbPath, "-obs", obsPath, "-top", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "estimate:") || !strings.Contains(s, "#1") || !strings.Contains(s, "#3") {
		t.Errorf("output %q", s)
	}
}

func TestLocateGeometricWithInlineAPs(t *testing.T) {
	dbPath, obsPath, apArgs := buildArtifacts(t)
	args := append([]string{"-db", dbPath, "-obs", obsPath, "-algo", "geometric"}, apArgs...)
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "estimate:") {
		t.Errorf("output %q", out.String())
	}
}

func TestLocateErrors(t *testing.T) {
	dbPath, obsPath, _ := buildArtifacts(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-db", dbPath, "-obs", obsPath, "-algo", "bogus"}, &out); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := run([]string{"-db", dbPath, "-obs", obsPath, "-algo", "geometric"}, &out); err == nil {
		t.Error("geometric without AP positions accepted")
	}
	if err := run([]string{"-db", "/nope", "-obs", obsPath}, &out); err == nil {
		t.Error("missing db accepted")
	}
	if err := run([]string{"-db", dbPath, "-obs", "/nope"}, &out); err == nil {
		t.Error("missing observation accepted")
	}
}
