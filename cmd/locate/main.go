// locate is the working phase on the command line: load a training
// database, average an observation wi-scan file into a signal vector,
// and resolve it to a location with a chosen algorithm.
//
// Usage:
//
//	locate -db train.tdb -obs observation.wiscan
//	locate -db train.tdb -obs observation.wiscan -algo geometric -plan house.plan
//	locate -db train.tdb -obs observation.wiscan -algo knn -k 4 -top 5
//
// The geometric algorithms need AP positions, taken from an annotated
// plan (-plan) or given inline (-ap BSSID@x,y, repeatable).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"indoorloc/internal/cliutil"
	"indoorloc/internal/core"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "locate:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("locate", flag.ContinueOnError)
	var (
		dbPath   = fs.String("db", "", "training database (required)")
		obsPath  = fs.String("obs", "", "observation wi-scan file (required)")
		algo     = fs.String("algo", core.AlgoProbabilistic, fmt.Sprintf("algorithm %v", core.Algorithms()))
		planPath = fs.String("plan", "", "annotated plan supplying AP positions (geometric algorithms)")
		k        = fs.Int("k", 0, "neighbour count for knn/wknn")
		top      = fs.Int("top", 1, "print the top N candidates")
		aps      cliutil.StringList
	)
	fs.Var(&aps, "ap", "AP position: \"bssid@x,y\" in feet (repeatable; geometric algorithms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *obsPath == "" {
		return fmt.Errorf("need -db FILE and -obs FILE")
	}
	db, err := trainingdb.LoadFile(*dbPath)
	if err != nil {
		return err
	}
	cfg := core.BuildConfig{K: *k}
	if len(aps) > 0 {
		cfg.APPositions = make(map[string]geom.Point, len(aps))
		for _, arg := range aps {
			np, err := cliutil.ParseNamedPoint(arg)
			if err != nil {
				return fmt.Errorf("-ap %s", err)
			}
			cfg.APPositions[np.Name] = np.Pos
		}
	} else if *planPath != "" {
		plan, err := floorplan.LoadFile(*planPath)
		if err != nil {
			return err
		}
		cfg.APPositions, err = plan.APPositions()
		if err != nil {
			return err
		}
	}
	in, err := core.New(core.WithDB(db), core.WithAlgorithm(*algo), core.WithConfig(cfg))
	if err != nil {
		return err
	}
	locator := in.Service.Locator

	fh, err := os.Open(*obsPath)
	if err != nil {
		return err
	}
	scanFile, err := wiscan.Read(fh, *obsPath)
	fh.Close()
	if err != nil {
		return err
	}
	obs := localize.ObservationFromRecords(scanFile.Records)
	fmt.Fprintf(out, "observation: %d APs over %d records (%.1f s)\n",
		len(obs), len(scanFile.Records), float64(scanFile.Duration())/1000)

	est, err := locator.Locate(obs)
	if err != nil {
		return err
	}
	if est.Name != "" {
		fmt.Fprintf(out, "estimate: %v at %s (score %.3f)\n", est.Pos, est.Name, est.Score)
	} else {
		fmt.Fprintf(out, "estimate: %v (score %.3f)\n", est.Pos, est.Score)
	}
	if *top > 1 && len(est.Candidates) > 0 {
		n := *top
		if n > len(est.Candidates) {
			n = len(est.Candidates)
		}
		for i := 0; i < n; i++ {
			c := est.Candidates[i]
			fmt.Fprintf(out, "  #%d %s %v (score %.3f)\n", i+1, c.Name, c.Pos, c.Score)
		}
	}
	return nil
}
