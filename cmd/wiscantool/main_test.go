package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/wiscan"
)

func sampleFile(loc string, start int64, n int) *wiscan.File {
	f := &wiscan.File{Location: loc}
	for i := 0; i < n; i++ {
		f.Records = append(f.Records, wiscan.Record{
			TimeMillis: start + int64(i)*1000,
			BSSID:      "aa:bb:cc:00:00:01",
			SSID:       "net",
			Channel:    6,
			RSSI:       -60 - i%3,
			Noise:      -95,
		})
	}
	return f
}

func writeSampleDir(t *testing.T, locs ...string) string {
	t.Helper()
	dir := t.TempDir()
	coll := &wiscan.Collection{Files: map[string]*wiscan.File{}}
	for _, loc := range locs {
		coll.Files[loc] = sampleFile(loc, 0, 5)
	}
	if err := coll.WriteDir(dir); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestStatsSingleFile(t *testing.T) {
	dir := writeSampleDir(t, "kitchen")
	var out bytes.Buffer
	if err := run([]string{"-stats", filepath.Join(dir, "kitchen.wiscan")}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "kitchen: 5 records") || !strings.Contains(s, "mean=") {
		t.Errorf("stats: %q", s)
	}
}

func TestStatsCollection(t *testing.T) {
	dir := writeSampleDir(t, "kitchen", "hall")
	var out bytes.Buffer
	if err := run([]string{"-stats", dir}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "collection: 2 locations") {
		t.Errorf("stats: %q", out.String())
	}
}

func TestConvertDirToZipAndBack(t *testing.T) {
	dir := writeSampleDir(t, "kitchen", "hall")
	zipPath := filepath.Join(t.TempDir(), "scans.zip")
	var out bytes.Buffer
	if err := run([]string{"-convert", dir, "-out", zipPath}, &out); err != nil {
		t.Fatal(err)
	}
	back := filepath.Join(t.TempDir(), "back")
	out.Reset()
	if err := run([]string{"-convert", zipPath, "-out", back}, &out); err != nil {
		t.Fatal(err)
	}
	coll, err := wiscan.ReadCollection(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(coll.Files) != 2 {
		t.Errorf("%d files after round trip", len(coll.Files))
	}
}

func TestMerge(t *testing.T) {
	a := writeSampleDir(t, "kitchen")
	b := writeSampleDir(t, "hall")
	dest := filepath.Join(t.TempDir(), "all")
	var out bytes.Buffer
	if err := run([]string{"-merge", a, "-merge", b, "-out", dest}, &out); err != nil {
		t.Fatal(err)
	}
	coll, err := wiscan.ReadCollection(dest)
	if err != nil {
		t.Fatal(err)
	}
	if len(coll.Files) != 2 {
		t.Errorf("merged %d files", len(coll.Files))
	}
	// Collision rejected.
	c := writeSampleDir(t, "kitchen")
	if err := run([]string{"-merge", a, "-merge", c, "-out", dest}, &out); err == nil {
		t.Error("colliding merge accepted")
	}
}

func TestSplit(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "walk.wiscan")
	fh, err := os.Create(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := wiscan.Write(fh, sampleFile("walk", 0, 12)); err != nil {
		t.Fatal(err)
	}
	fh.Close()
	destDir := filepath.Join(dir, "windows")
	var out bytes.Buffer
	if err := run([]string{"-split", src, "-window", "4000", "-out", destDir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(destDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 { // 12 s at 4 s windows
		t.Errorf("%d windows", len(entries))
	}
	// Each window parses back.
	coll, err := wiscan.ReadCollection(destDir)
	if err != nil {
		t.Fatal(err)
	}
	if coll.TotalRecords() != 12 {
		t.Errorf("windows hold %d records", coll.TotalRecords())
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-stats", "/nope"}, &out); err == nil {
		t.Error("missing stats path accepted")
	}
	if err := run([]string{"-convert", "/nope", "-out", "x.zip"}, &out); err == nil {
		t.Error("missing convert path accepted")
	}
	if err := run([]string{"-convert", t.TempDir()}, &out); err == nil {
		t.Error("convert without -out accepted")
	}
	if err := run([]string{"-merge", t.TempDir()}, &out); err == nil {
		t.Error("merge without -out accepted")
	}
	if err := run([]string{"-split", "/nope", "-out", "d"}, &out); err == nil {
		t.Error("missing split source accepted")
	}
	if err := run([]string{"-split", "x"}, &out); err == nil {
		t.Error("split without -out accepted")
	}
}
