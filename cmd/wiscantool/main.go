// wiscantool inspects and reshapes wi-scan captures: per-file
// statistics, collection merge/convert between directory and zip
// forms, and splitting a continuous log into observation windows.
//
// Usage:
//
//	wiscantool -stats file.wiscan                # per-AP statistics
//	wiscantool -stats scans/                     # whole collection
//	wiscantool -convert scans/ -out scans.zip    # dir → zip (or back)
//	wiscantool -merge a/ -merge b.zip -out all/  # union of collections
//	wiscantool -split walk.wiscan -window 5000 -out windows/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"indoorloc/internal/cliutil"
	"indoorloc/internal/stats"
	"indoorloc/internal/wiscan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wiscantool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("wiscantool", flag.ContinueOnError)
	var (
		statsPath = fs.String("stats", "", "print statistics for a wi-scan file or collection")
		convert   = fs.String("convert", "", "collection to convert (directory or zip)")
		splitPath = fs.String("split", "", "wi-scan file to split into windows")
		window    = fs.Int64("window", 5000, "window size in milliseconds for -split")
		stride    = fs.Int64("stride", 0, "stride in milliseconds for -split (0 = non-overlapping)")
		outPath   = fs.String("out", "", "output path for -convert/-merge/-split")
		merges    cliutil.StringList
	)
	fs.Var(&merges, "merge", "collection to merge (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *statsPath != "":
		return printStats(out, *statsPath)
	case *convert != "":
		if *outPath == "" {
			return fmt.Errorf("-convert needs -out")
		}
		coll, err := wiscan.ReadCollection(*convert)
		if err != nil {
			return err
		}
		return writeCollection(out, coll, *outPath)
	case len(merges) > 0:
		if *outPath == "" {
			return fmt.Errorf("-merge needs -out")
		}
		merged := &wiscan.Collection{Files: make(map[string]*wiscan.File)}
		for _, path := range merges {
			c, err := wiscan.ReadCollection(path)
			if err != nil {
				return err
			}
			for name, f := range c.Files {
				if _, dup := merged.Files[name]; dup {
					return fmt.Errorf("location %q appears in more than one collection", name)
				}
				merged.Files[name] = f
			}
		}
		return writeCollection(out, merged, *outPath)
	case *splitPath != "":
		if *outPath == "" {
			return fmt.Errorf("-split needs -out DIR")
		}
		return splitFile(out, *splitPath, *outPath, *window, *stride)
	default:
		return fmt.Errorf("nothing to do: pass -stats, -convert, -merge or -split")
	}
}

// printStats summarises a single file or a whole collection.
func printStats(out io.Writer, path string) error {
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	if info.IsDir() || strings.EqualFold(filepath.Ext(path), ".zip") {
		coll, err := wiscan.ReadCollection(path)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "collection: %d locations, %d records\n",
			len(coll.Files), coll.TotalRecords())
		for _, name := range coll.Locations() {
			fileStats(out, coll.Files[name])
		}
		return nil
	}
	fh, err := os.Open(path)
	if err != nil {
		return err
	}
	defer fh.Close()
	f, err := wiscan.Read(fh, path)
	if err != nil {
		return err
	}
	fileStats(out, f)
	return nil
}

func fileStats(out io.Writer, f *wiscan.File) {
	fmt.Fprintf(out, "%s: %d records over %.1f s, %d sweeps\n",
		f.Location, len(f.Records), float64(f.Duration())/1000, len(f.Scans()))
	for _, bssid := range f.BSSIDs() {
		var r stats.Running
		r.AddAll(f.RSSIsFor(bssid))
		fmt.Fprintf(out, "  %s: n=%d mean=%.1f sd=%.1f range=[%.0f, %.0f]\n",
			bssid, r.N(), r.Mean(), r.StdDev(), r.Min(), r.Max())
	}
}

// writeCollection writes dir or zip based on the output extension.
func writeCollection(out io.Writer, coll *wiscan.Collection, dest string) error {
	var err error
	if strings.EqualFold(filepath.Ext(dest), ".zip") {
		err = coll.WriteZip(dest)
	} else {
		err = coll.WriteDir(dest)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d locations, %d records)\n",
		dest, len(coll.Files), coll.TotalRecords())
	return nil
}

// splitFile cuts a continuous capture into one wi-scan file per
// window.
func splitFile(out io.Writer, src, destDir string, window, stride int64) error {
	fh, err := os.Open(src)
	if err != nil {
		return err
	}
	f, err := wiscan.Read(fh, src)
	fh.Close()
	if err != nil {
		return err
	}
	wins := wiscan.Windows(f.Records, window, stride)
	if len(wins) == 0 {
		return fmt.Errorf("no windows produced (window %d ms)", window)
	}
	if err := os.MkdirAll(destDir, 0o755); err != nil {
		return err
	}
	for i, win := range wins {
		name := fmt.Sprintf("%s-w%03d", f.Location, i)
		wf := &wiscan.File{Location: name, Records: win}
		path := filepath.Join(destDir, name+".wiscan")
		dst, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := wiscan.Write(dst, wf); err != nil {
			dst.Close()
			return err
		}
		if err := dst.Close(); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "wrote %d windows to %s\n", len(wins), destDir)
	return nil
}
