package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

func makeDB(t *testing.T) string {
	t.Helper()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	coll := sim.NewScanner(env, 5).CaptureCollection(grid, 8)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.tdb")
	if err := trainingdb.SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestInfoAndEntries(t *testing.T) {
	dbPath := makeDB(t)
	var out bytes.Buffer
	if err := run([]string{"-db", dbPath, "-info"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "locations: 30") {
		t.Errorf("info: %q", out.String())
	}
	out.Reset()
	if err := run([]string{"-db", dbPath, "-entries"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "grid-0-0 at") || !strings.Contains(out.String(), "mean=") {
		t.Errorf("entries: %q", out.String()[:200])
	}
}

func TestConfusable(t *testing.T) {
	dbPath := makeDB(t)
	var out bytes.Buffer
	if err := run([]string{"-db", dbPath, "-confusable", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if strings.Count(out.String(), "|") != 3 {
		t.Errorf("confusable: %q", out.String())
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	dbPath := makeDB(t)
	jsonPath := filepath.Join(t.TempDir(), "train.json")
	var out bytes.Buffer
	if err := run([]string{"-db", dbPath, "-export", jsonPath, "-samples"}, &out); err != nil {
		t.Fatal(err)
	}
	newDB := filepath.Join(t.TempDir(), "imported.tdb")
	out.Reset()
	if err := run([]string{"-db", newDB, "-import", jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	back, err := trainingdb.LoadFile(newDB)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 30 {
		t.Errorf("imported %d locations", back.Len())
	}
}

func TestPruneAndRemove(t *testing.T) {
	dbPath := makeDB(t)
	outDB := filepath.Join(t.TempDir(), "v2.tdb")
	var out bytes.Buffer
	if err := run([]string{"-db", dbPath, "-remove", "grid-0-0", "-out", outDB}, &out); err != nil {
		t.Fatal(err)
	}
	back, err := trainingdb.LoadFile(outDB)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 29 {
		t.Errorf("%d locations after removal", back.Len())
	}
	// Prune with an impossible threshold empties per-entry AP maps.
	out.Reset()
	if err := run([]string{"-db", dbPath, "-prune", "10000", "-out", outDB}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "pruned 120") { // 30 locations × 4 APs
		t.Errorf("prune output: %q", out.String())
	}
}

func TestModifiedWithoutOut(t *testing.T) {
	dbPath := makeDB(t)
	var out bytes.Buffer
	if err := run([]string{"-db", dbPath, "-remove", "grid-0-0"}, &out); err == nil {
		t.Error("modification without -out accepted")
	}
}

func TestErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no -db accepted")
	}
	if err := run([]string{"-db", "/nope", "-info"}, &out); err == nil {
		t.Error("missing db accepted")
	}
	dbPath := makeDB(t)
	if err := run([]string{"-db", dbPath, "-remove", "ghost", "-out", "x"}, &out); err == nil {
		t.Error("removing ghost accepted")
	}
	if err := run([]string{"-db", filepath.Join(t.TempDir(), "o.tdb"), "-import", "/nope"}, &out); err == nil {
		t.Error("missing import accepted")
	}
}
