// tdbtool inspects and maintains training databases.
//
// Usage:
//
//	tdbtool -db train.tdb -info                       # summary
//	tdbtool -db train.tdb -entries                    # per-location stats
//	tdbtool -db train.tdb -export train.json          # JSON interchange
//	tdbtool -db train.tdb -export train.json -samples # include raw samples
//	tdbtool -db train.tdb -import train.json          # JSON → .tdb
//	tdbtool -db train.tdb -prune 5 -out pruned.tdb    # drop sparse APs
//	tdbtool -db train.tdb -remove kitchen -out v2.tdb # drop a location
//	tdbtool -db train.tdb -confusable 5               # closest fingerprint pairs
//
// Compiled radio-map artifacts (the v2 binary locserved -map-file
// serves) have their own subcommands:
//
//	tdbtool compile -db train.tdb -out campus.ilr     # quantized artifact
//	tdbtool compile -db train.tdb -out c.ilr -keep-float64
//	tdbtool inspect campus.ilr                        # header + section table
//	tdbtool verify campus.ilr                         # full CRC + payload check
//
// The city subcommand generates a synthetic multi-venue artifact
// directory — the fixture `locserved -venues DIR` serves and the
// multi-venue soak measures:
//
//	tdbtool city -out ./city -campuses 10 -floors 4   # 40 venues
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"indoorloc/internal/ingest"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tdbtool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) > 0 {
		switch args[0] {
		case "compile":
			return runCompile(args[1:], out)
		case "inspect":
			return runInspect(args[1:], out)
		case "verify":
			return runVerify(args[1:], out)
		case "city":
			return runCity(args[1:], out)
		}
	}
	fs := flag.NewFlagSet("tdbtool", flag.ContinueOnError)
	var (
		dbPath     = fs.String("db", "", "training database (required)")
		info       = fs.Bool("info", false, "print a summary")
		entries    = fs.Bool("entries", false, "print per-location statistics")
		exportPath = fs.String("export", "", "write the database as JSON")
		samples    = fs.Bool("samples", false, "include raw samples in -export")
		importPath = fs.String("import", "", "read a JSON export and write it to -db")
		prune      = fs.Int("prune", 0, "drop per-location APs with fewer samples than this")
		remove     = fs.String("remove", "", "drop a training location by name")
		confusable = fs.Int("confusable", 0, "print the N closest fingerprint pairs")
		outPath    = fs.String("out", "", "where to write the modified database")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("need -db FILE")
	}

	// Import mode: JSON in, tdb out.
	if *importPath != "" {
		fh, err := os.Open(*importPath)
		if err != nil {
			return err
		}
		db, err := trainingdb.ImportJSON(fh)
		fh.Close()
		if err != nil {
			return err
		}
		if err := trainingdb.SaveFile(*dbPath, db); err != nil {
			return err
		}
		fmt.Fprintf(out, "imported %s → %s (%d locations)\n", *importPath, *dbPath, db.Len())
		return nil
	}

	db, err := trainingdb.LoadFile(*dbPath)
	if err != nil {
		return err
	}
	modified := false

	if *prune > 0 {
		removed := db.PruneAPs(*prune)
		fmt.Fprintf(out, "pruned %d sparse ⟨location, AP⟩ records\n", removed)
		modified = true
	}
	if *remove != "" {
		if !db.RemoveEntry(*remove) {
			return fmt.Errorf("no location %q in the database", *remove)
		}
		fmt.Fprintf(out, "removed %q\n", *remove)
		modified = true
	}

	if *info {
		fmt.Fprintf(out, "locations: %d\nAPs: %d\nsamples: %d\n",
			db.Len(), len(db.BSSIDs), db.TotalSamples())
		for _, b := range db.BSSIDs {
			n := 0
			for _, e := range db.Entries {
				if s, ok := e.PerAP[b]; ok {
					n += s.N
				}
			}
			fmt.Fprintf(out, "  %s: %d samples\n", b, n)
		}
	}
	if *entries {
		for _, name := range db.Names() {
			e := db.Entries[name]
			fmt.Fprintf(out, "%s at %v:\n", name, e.Pos)
			bssids := make([]string, 0, len(e.PerAP))
			for b := range e.PerAP {
				bssids = append(bssids, b)
			}
			sort.Strings(bssids)
			for _, b := range bssids {
				s := e.PerAP[b]
				fmt.Fprintf(out, "  %s: n=%d mean=%.1f sd=%.1f range=[%.0f, %.0f]\n",
					b, s.N, s.Mean, s.StdDev, s.Min, s.Max)
			}
		}
	}
	if *confusable > 0 {
		type pair struct {
			key  string
			dist float64
		}
		var pairs []pair
		for k, v := range db.Distinguishability(-95) {
			pairs = append(pairs, pair{k, v})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].dist != pairs[j].dist {
				return pairs[i].dist < pairs[j].dist
			}
			return pairs[i].key < pairs[j].key
		})
		n := *confusable
		if n > len(pairs) {
			n = len(pairs)
		}
		fmt.Fprintf(out, "most confusable fingerprint pairs (signal-space dB distance):\n")
		for _, p := range pairs[:n] {
			fmt.Fprintf(out, "  %-28s %.1f dB\n", p.key, p.dist)
		}
	}
	if *exportPath != "" {
		fh, err := os.Create(*exportPath)
		if err != nil {
			return err
		}
		if err := trainingdb.ExportJSON(fh, db, *samples); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "exported %s\n", *exportPath)
	}
	if modified {
		dest := *outPath
		if dest == "" {
			return fmt.Errorf("database modified but no -out FILE given")
		}
		if err := trainingdb.SaveFile(dest, db); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", dest)
	}
	return nil
}

// runCompile is `tdbtool compile`: training database in, v2 radio-map
// artifact out. By default the artifact carries only the quantized
// matrices (the serving shape, about a quarter of the float64
// footprint); -keep-float64 includes both families and -quantize=false
// writes float64 only.
func runCompile(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tdbtool compile", flag.ContinueOnError)
	var (
		dbPath     = fs.String("db", "", "training database to compile (required)")
		outPath    = fs.String("out", "", "artifact to write (required)")
		quantize   = fs.Bool("quantize", true, "include the int16-quantized matrices")
		keepFloats = fs.Bool("keep-float64", false, "keep the float64 matrices alongside the quantized ones")
		floor      = fs.Float64("floor", -95, "floor RSSI (dBm) substituted for unheard APs")
		floorSigma = fs.Float64("floor-sigma", 4, "floor model standard deviation (dB)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" || *outPath == "" {
		return fmt.Errorf("compile needs -db FILE and -out FILE")
	}
	if !*quantize && *keepFloats {
		return fmt.Errorf("-keep-float64 only matters with -quantize")
	}
	db, err := trainingdb.LoadFile(*dbPath)
	if err != nil {
		return err
	}
	c := db.Compile(*floor, *floorSigma)
	if *quantize {
		c.Quantize()
		if !*keepFloats {
			c.ReleaseFloat64()
		}
	}
	if err := trainingdb.WriteCompiledFile(*outPath, c); err != nil {
		return err
	}
	st, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "compiled %s → %s: %d locations × %d APs, %d matrix bytes, %d on disk (quantized=%v float64=%v)\n",
		*dbPath, *outPath, c.NumEntries(), c.NumAPs(), c.MatrixBytes(), st.Size(),
		c.Quant != nil, c.Mean != nil)
	return nil
}

// runCity is `tdbtool city`: generate a synthetic city of venues as
// quantized v2 artifacts, one <venue-id>.ilr per floor, in the layout
// venue.Registry serves from. The fixture is deterministic in -seed,
// so two runs with the same flags produce byte-identical directories.
func runCity(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tdbtool city", flag.ContinueOnError)
	var (
		outDir   = fs.String("out", "", "artifact directory to write (required)")
		campuses = fs.Int("campuses", 1, "buildings in the city")
		floors   = fs.Int("floors", 1, "floors per building; campuses × floors venues total")
		sweeps   = fs.Int("sweeps", 0, "training sweeps per grid point (0 = 3)")
		seed     = fs.Int64("seed", 1, "simulation seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("city needs -out DIR")
	}
	if *campuses <= 0 || *floors <= 0 || *sweeps < 0 {
		return fmt.Errorf("-campuses and -floors must be positive, -sweeps non-negative")
	}
	cfg := sim.CityConfig{Campuses: *campuses, Floors: *floors, Seed: *seed, Sweeps: *sweeps}
	ids, err := sim.WriteArtifacts(*outDir, cfg)
	if err != nil {
		return err
	}
	var total int64
	for _, id := range ids {
		st, err := os.Stat(fmt.Sprintf("%s/%s.ilr", *outDir, id))
		if err != nil {
			return err
		}
		total += st.Size()
	}
	fmt.Fprintf(out, "wrote %d venues (%s … %s) to %s, %d bytes total\n",
		len(ids), ids[0], ids[len(ids)-1], *outDir, total)
	return nil
}

// runInspect is `tdbtool inspect FILE`: print an artifact's header and
// section table without decoding (or CRC-checking) the payloads.
func runInspect(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tdbtool inspect", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("inspect needs exactly one artifact FILE")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	info, err := trainingdb.ReadFileInfo(data)
	if err != nil {
		return err
	}
	order := "big-endian"
	if info.LittleEndian {
		order = "little-endian"
	}
	fmt.Fprintf(out, "%s (%s payloads, %d bytes)\n", info.Version, order, len(data))
	fmt.Fprintf(out, "generation: %d\nlocations: %d\nAPs: %d\nfloor: %.1f dBm (σ %.1f)\n",
		info.Generation, info.NumEntries, info.NumAPs, info.FloorRSSI, info.FloorSigma)
	// A live trainer writes a "<FILE>.manifest" sidecar tying the
	// artifact to its WAL position; surface it when present so an
	// operator can line a follower's snapshot up with the journal.
	if am, err := ingest.ReadArtifactManifest(fs.Arg(0)); err == nil {
		fmt.Fprintf(out, "wal watermark: %d (epoch %016x, built %s)\n",
			am.Watermark, am.Epoch, am.BuiltAt.Format("2006-01-02T15:04:05Z07:00"))
	}
	fmt.Fprintf(out, "matrices: quantized=%v float64=%v\n", info.Quantized, info.HasFloat64)
	fmt.Fprintf(out, "sections (%d):\n", len(info.Sections))
	for _, s := range info.Sections {
		fmt.Fprintf(out, "  %-18s off=%-10d len=%-10d crc=%08x\n", s.Name, s.Offset, s.Length, s.CRC)
	}
	return nil
}

// runVerify is `tdbtool verify FILE`: a full decode with every section
// CRC checked — the integrity pass OpenCompiledFile deliberately skips
// to keep the mmap load lazy.
func runVerify(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tdbtool verify", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("verify needs exactly one artifact FILE")
	}
	data, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	c, err := trainingdb.DecodeCompiled(data, trainingdb.DecodeOptions{VerifyCRC: true})
	if err != nil {
		return fmt.Errorf("verify %s: %w", fs.Arg(0), err)
	}
	fmt.Fprintf(out, "%s OK: %d locations × %d APs, generation %d, quantized=%v float64=%v\n",
		fs.Arg(0), c.NumEntries(), c.NumAPs(), c.Generation, c.Quant != nil, c.Mean != nil)
	return nil
}
