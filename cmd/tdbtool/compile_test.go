package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/trainingdb"
)

func TestCompileInspectVerify(t *testing.T) {
	dbPath := makeDB(t)
	artifact := filepath.Join(t.TempDir(), "map.ilr")
	var out bytes.Buffer
	if err := run([]string{"compile", "-db", dbPath, "-out", artifact}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "quantized=true float64=false") {
		t.Errorf("compile output: %q", out.String())
	}

	// The default artifact serves: decode and check the shape.
	c, closeMap, err := trainingdb.OpenCompiledFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumEntries() != 30 || c.Quant == nil || c.Mean != nil {
		t.Errorf("artifact shape: %d entries quant=%v float64=%v",
			c.NumEntries(), c.Quant != nil, c.Mean != nil)
	}
	if err := closeMap(); err != nil {
		t.Fatal(err)
	}

	out.Reset()
	if err := run([]string{"inspect", artifact}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"ILRMAPv2", "locations: 30", "quantized=true", "mean-q"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("inspect output missing %q:\n%s", want, out.String())
		}
	}

	out.Reset()
	if err := run([]string{"verify", artifact}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK: 30 locations") {
		t.Errorf("verify output: %q", out.String())
	}

	// Corrupt one payload byte: inspect (header only) still works,
	// verify must fail.
	data, err := os.ReadFile(artifact)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	bad := filepath.Join(t.TempDir(), "bad.ilr")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{"inspect", bad}, &out); err != nil {
		t.Fatalf("inspect rejected payload corruption it should not read: %v", err)
	}
	if err := run([]string{"verify", bad}, &out); err == nil {
		t.Error("verify accepted a corrupt artifact")
	}
}

func TestCompileVariants(t *testing.T) {
	dbPath := makeDB(t)
	var out bytes.Buffer

	both := filepath.Join(t.TempDir(), "both.ilr")
	if err := run([]string{"compile", "-db", dbPath, "-out", both, "-keep-float64"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "quantized=true float64=true") {
		t.Errorf("keep-float64 output: %q", out.String())
	}

	out.Reset()
	floats := filepath.Join(t.TempDir(), "f64.ilr")
	if err := run([]string{"compile", "-db", dbPath, "-out", floats, "-quantize=false"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "quantized=false float64=true") {
		t.Errorf("float64-only output: %q", out.String())
	}

	// The quantized matrices are a fraction of the float64 footprint.
	// (File sizes on a toy 30×4 map are dominated by page-alignment
	// padding, so compare the matrix payloads, not the files.)
	quant := filepath.Join(t.TempDir(), "q.ilr")
	if err := run([]string{"compile", "-db", dbPath, "-out", quant}, &out); err != nil {
		t.Fatal(err)
	}
	qc, closeQ, err := trainingdb.OpenCompiledFile(quant)
	if err != nil {
		t.Fatal(err)
	}
	defer closeQ()
	fc, closeF, err := trainingdb.OpenCompiledFile(floats)
	if err != nil {
		t.Fatal(err)
	}
	defer closeF()
	// MatrixBytes includes the shared Trained/N overhead, so the total
	// ratio is a bit above the 4× of the matrices alone.
	if qb, fb := qc.MatrixBytes(), fc.MatrixBytes(); qb*2 >= fb {
		t.Errorf("quantized matrices %d B vs float64 %d B — expected < ½", qb, fb)
	}
}

func TestSubcommandErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"compile"}, &out); err == nil {
		t.Error("compile without -db/-out accepted")
	}
	if err := run([]string{"compile", "-db", "/nope", "-out", "x.ilr"}, &out); err == nil {
		t.Error("compile of a missing db accepted")
	}
	dbPath := makeDB(t)
	if err := run([]string{"compile", "-db", dbPath, "-out", "x.ilr",
		"-quantize=false", "-keep-float64"}, &out); err == nil {
		t.Error("contradictory -quantize=false -keep-float64 accepted")
	}
	if err := run([]string{"inspect"}, &out); err == nil {
		t.Error("inspect without a file accepted")
	}
	if err := run([]string{"inspect", "/nope"}, &out); err == nil {
		t.Error("inspect of a missing file accepted")
	}
	if err := run([]string{"verify", "/nope"}, &out); err == nil {
		t.Error("verify of a missing file accepted")
	}
	if err := run([]string{"inspect", dbPath}, &out); err == nil {
		t.Error("inspect accepted a gob database as an artifact")
	}
}

// TestCityGenerate drives `tdbtool city` end to end: a 2×2 city comes
// out as four verifiable artifacts named in venue.Registry's layout.
func TestCityGenerate(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "city")
	var out bytes.Buffer
	if err := run([]string{"city", "-out", dir, "-campuses", "2", "-floors", "2", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "wrote 4 venues") {
		t.Errorf("city output: %q", out.String())
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 4 {
		t.Fatalf("city dir holds %d files, want 4", len(ents))
	}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "campus-00") || !strings.HasSuffix(e.Name(), ".ilr") {
			t.Errorf("unexpected artifact name %q", e.Name())
		}
	}
	// Every artifact passes the full CRC verify, proving the generator
	// writes the same format `tdbtool compile` does.
	out.Reset()
	if err := run([]string{"verify", filepath.Join(dir, "campus-001-floor-1.ilr")}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "OK") {
		t.Errorf("verify output: %q", out.String())
	}

	for _, bad := range [][]string{
		{"city"},                                // no -out
		{"city", "-out", dir, "-campuses", "0"}, // zero campuses
		{"city", "-out", dir, "-floors", "-1"},  // negative floors
	} {
		if err := run(bad, &out); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}
