package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/compositor"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

func fixture(t *testing.T) (planPath, dbPath, bssid string) {
	t.Helper()
	dir := t.TempDir()
	scen := sim.PaperHouse()
	plan, err := compositor.Blueprint(scen.Name, compositor.BlueprintSpec{
		Outline: scen.Outline, Walls: scen.Walls,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ap := range scen.APs {
		px, err := plan.ToPixel(ap.Pos)
		if err != nil {
			t.Fatal(err)
		}
		plan.AddAP(ap.BSSID, px)
	}
	planPath = filepath.Join(dir, "house.plan")
	if err := plan.SaveFile(planPath); err != nil {
		t.Fatal(err)
	}
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	coll := sim.NewScanner(env, 3).CaptureCollection(grid, 10)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dbPath = filepath.Join(dir, "train.tdb")
	if err := trainingdb.SaveFile(dbPath, db); err != nil {
		t.Fatal(err)
	}
	return planPath, dbPath, scen.APs[0].BSSID
}

func TestRadiomapModelField(t *testing.T) {
	planPath, _, bssid := fixture(t)
	outPath := filepath.Join(t.TempDir(), "cover.gif")
	var out bytes.Buffer
	if err := run([]string{"-plan", planPath, "-ap", bssid, "-out", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(outPath)
	if err != nil || info.Size() == 0 {
		t.Fatalf("output: %v", err)
	}
}

func TestRadiomapFittedField(t *testing.T) {
	planPath, dbPath, bssid := fixture(t)
	outPath := filepath.Join(t.TempDir(), "fitted.png")
	var out bytes.Buffer
	err := run([]string{"-plan", planPath, "-ap", bssid, "-db", dbPath, "-out", outPath}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "fitted curve") {
		t.Errorf("output %q", out.String())
	}
	if _, err := os.Stat(outPath); err != nil {
		t.Fatal(err)
	}
}

func TestRadiomapErrors(t *testing.T) {
	planPath, dbPath, bssid := fixture(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-plan", planPath, "-ap", "ghost", "-out", "x.gif"}, &out); err == nil {
		t.Error("unknown AP accepted")
	}
	if err := run([]string{"-plan", planPath, "-ap", bssid, "-out", "x.tiff"}, &out); err == nil {
		t.Error("tiff accepted")
	}
	if err := run([]string{"-plan", planPath, "-ap", bssid, "-db", "/nope", "-out", "x.gif"}, &out); err == nil {
		t.Error("missing db accepted")
	}
	if err := run([]string{"-plan", "/nope", "-ap", bssid, "-out", "x.gif"}, &out); err == nil {
		t.Error("missing plan accepted")
	}
	_ = dbPath
}
