// radiomap renders an access point's predicted coverage over a floor
// plan as a heatmap — the radio-map view used to sanity-check AP
// placement before surveying.
//
// The field can come from two sources:
//
//   - a propagation model over the plan's walls (default): the
//     log-distance model with RADAR-style wall attenuation, or
//   - a training database (-db): the fitted inverse-square curve for
//     that AP, i.e. what the geometric approach believes.
//
// Usage:
//
//	radiomap -plan house.plan -ap 00:02:2d:00:00:0a -out coverage.gif
//	radiomap -plan house.plan -ap 00:02:2d:00:00:0a -db train.tdb -out fitted.gif
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"indoorloc/internal/compositor"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/regress"
	"indoorloc/internal/rf"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "radiomap:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("radiomap", flag.ContinueOnError)
	var (
		planPath = fs.String("plan", "", "annotated plan with the AP marked (required)")
		apName   = fs.String("ap", "", "AP marker name / BSSID to map (required)")
		dbPath   = fs.String("db", "", "training database: use the fitted curve instead of the model")
		outPath  = fs.String("out", "", "output image: .gif or .png (required)")
		txPower  = fs.Float64("tx", -30, "model transmit level at the reference distance, dBm")
		lo       = fs.Float64("lo", -95, "color ramp floor, dBm")
		hi       = fs.Float64("hi", -40, "color ramp ceiling, dBm")
		cell     = fs.Float64("cell", 1, "sampling cell size, feet")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planPath == "" || *apName == "" || *outPath == "" {
		return fmt.Errorf("need -plan FILE, -ap NAME and -out FILE")
	}
	plan, err := floorplan.LoadFile(*planPath)
	if err != nil {
		return err
	}
	positions, err := plan.APPositions()
	if err != nil {
		return err
	}
	apPos, ok := positions[*apName]
	if !ok {
		return fmt.Errorf("AP %q not on the plan (have %v)", *apName, keys(positions))
	}

	var field func(geom.Point) float64
	if *dbPath != "" {
		db, err := trainingdb.LoadFile(*dbPath)
		if err != nil {
			return err
		}
		dists, rssis := db.DistanceSamples(*apName, apPos)
		if len(dists) == 0 {
			return fmt.Errorf("training database has no samples for AP %q", *apName)
		}
		model, err := regress.Fit(regress.InversePowerBasis{Degree: 2, MinDist: 1}, dists, rssis)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "fitted curve: %s\n", model)
		field = func(p geom.Point) float64 { return model.Predict(apPos.Dist(p)) }
	} else {
		model := rf.DefaultLogDistance()
		walls := plan.Walls
		field = func(p geom.Point) float64 {
			crossings := geom.CrossingCount(apPos, p, walls)
			return float64(model.MeanRSSI(units.DBm(*txPower), apPos.Dist(p), crossings))
		}
	}

	// Cover the bounding box of the plan's annotations.
	area := coverageArea(plan, positions)
	canvas, err := compositor.RenderHeatmap(plan, compositor.Heatmap{
		Field: field, Lo: *lo, Hi: *hi, CellFeet: *cell, Area: area,
	})
	if err != nil {
		return err
	}
	canvas.DrawHeatLegend(4, 4, *lo, *hi)
	switch strings.ToLower(filepath.Ext(*outPath)) {
	case ".gif":
		err = canvas.SaveGIF(*outPath)
	case ".png":
		err = canvas.SavePNG(*outPath)
	default:
		return fmt.Errorf("output must end in .gif or .png, got %s", *outPath)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (area %.0f×%.0f ft)\n", *outPath, area.Width(), area.Height())
	return nil
}

// coverageArea spans all AP and location annotations, padded.
func coverageArea(plan *floorplan.Plan, aps map[string]geom.Point) geom.Rect {
	first := true
	var area geom.Rect
	grow := func(p geom.Point) {
		if first {
			area = geom.Rect{Min: p, Max: p}
			first = false
			return
		}
		if p.X < area.Min.X {
			area.Min.X = p.X
		}
		if p.Y < area.Min.Y {
			area.Min.Y = p.Y
		}
		if p.X > area.Max.X {
			area.Max.X = p.X
		}
		if p.Y > area.Max.Y {
			area.Max.Y = p.Y
		}
	}
	for _, p := range aps {
		grow(p)
	}
	for _, m := range plan.Locations {
		if w, err := plan.ToWorld(m.Pixel); err == nil {
			grow(w)
		}
	}
	if first {
		return geom.RectWH(0, 0, 1, 1)
	}
	return area
}

func keys(m map[string]geom.Point) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
