// fpcomp is the Floor Plan Compositor: it creates images from a floor
// plan and marks them with locations given as command-line coordinate
// values — test locations, the estimates a localization algorithm
// derived for them, and the plan's own annotations.
//
// Usage examples:
//
//	# Render the plan with APs, named locations and walls drawn.
//	fpcomp -plan house.plan -aps -locs -walls -labels -out floor.gif
//
//	# Mark user-given coordinates (feet) and actual:estimated pairs.
//	fpcomp -plan house.plan -mark "P@20,20" -vec 15,15:18,22 -out test.gif
//
// Output format follows the file extension: .gif (the paper's format)
// or .png.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"indoorloc/internal/cliutil"
	"indoorloc/internal/compositor"
	"indoorloc/internal/floorplan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fpcomp:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fpcomp", flag.ContinueOnError)
	var (
		planPath = fs.String("plan", "", "annotated plan file (required)")
		outPath  = fs.String("out", "", "output image path: .gif or .png (required)")
		drawAPs  = fs.Bool("aps", false, "draw access points")
		drawLocs = fs.Bool("locs", false, "draw named locations")
		drawWall = fs.Bool("walls", false, "draw walls")
		labels   = fs.Bool("labels", false, "draw labels next to markers")
		marks    cliutil.StringList
		vecs     cliutil.StringList
	)
	fs.Var(&marks, "mark", "mark a coordinate: \"label@x,y\" in feet (repeatable)")
	fs.Var(&vecs, "vec", "mark an actual:estimated pair: \"ax,ay:ex,ey\" in feet (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *planPath == "" || *outPath == "" {
		return fmt.Errorf("need -plan FILE and -out FILE")
	}
	plan, err := floorplan.LoadFile(*planPath)
	if err != nil {
		return err
	}
	opts := compositor.RenderOptions{
		DrawAPs:       *drawAPs,
		DrawLocations: *drawLocs,
		DrawWalls:     *drawWall,
		Labels:        *labels,
	}
	inks := []compositor.Ink{
		compositor.Purple, compositor.Teal, compositor.Orange, compositor.Blue,
	}
	for i, arg := range marks {
		np, err := cliutil.ParseNamedPoint(arg)
		if err != nil {
			return fmt.Errorf("-mark %s", err)
		}
		opts.Markers = append(opts.Markers, compositor.WorldMarker{
			Pos:   np.Pos,
			Label: np.Name,
			Style: compositor.StyleDot,
			Ink:   inks[i%len(inks)],
		})
	}
	for _, arg := range vecs {
		seg, err := cliutil.ParseSegment(arg)
		if err != nil {
			return fmt.Errorf("-vec %s", err)
		}
		opts.Vectors = append(opts.Vectors, compositor.ErrorVector{
			Actual:    seg.A,
			Estimated: seg.B,
		})
	}
	canvas, err := compositor.Render(plan, opts)
	if err != nil {
		return err
	}
	switch strings.ToLower(filepath.Ext(*outPath)) {
	case ".gif":
		err = canvas.SaveGIF(*outPath)
	case ".png":
		err = canvas.SavePNG(*outPath)
	default:
		return fmt.Errorf("output must end in .gif or .png, got %s", *outPath)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", *outPath)
	return nil
}
