package main

import (
	"bytes"
	"image"
	"os"
	"path/filepath"
	"testing"

	"indoorloc/internal/compositor"
	"indoorloc/internal/geom"
)

func blueprintPlan(t *testing.T) string {
	t.Helper()
	plan, err := compositor.Blueprint("house", compositor.BlueprintSpec{
		Outline: geom.RectWH(0, 0, 50, 40),
		Walls:   []geom.Segment{geom.Seg(geom.Pt(25, 0), geom.Pt(25, 25))},
	})
	if err != nil {
		t.Fatal(err)
	}
	px, err := plan.ToPixel(geom.Pt(0, 0))
	if err != nil {
		t.Fatal(err)
	}
	plan.AddAP("A", px)
	if err := plan.AddLocation("kitchen", image.Pt(px.X+40, px.Y-40)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "house.plan")
	if err := plan.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFpcompGIFAndPNG(t *testing.T) {
	planPath := blueprintPlan(t)
	for _, ext := range []string{".gif", ".png"} {
		outPath := filepath.Join(t.TempDir(), "out"+ext)
		var out bytes.Buffer
		err := run([]string{
			"-plan", planPath, "-out", outPath,
			"-aps", "-locs", "-walls", "-labels",
			"-mark", "P@20,20", "-vec", "15,15:18,22",
		}, &out)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		info, err := os.Stat(outPath)
		if err != nil || info.Size() == 0 {
			t.Errorf("%s: %v (size %d)", ext, err, info.Size())
		}
	}
}

func TestFpcompErrors(t *testing.T) {
	planPath := blueprintPlan(t)
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-plan", planPath, "-out", "x.bmp"}, &out); err == nil {
		t.Error("bmp extension accepted")
	}
	if err := run([]string{"-plan", "/nope", "-out", "x.gif"}, &out); err == nil {
		t.Error("missing plan accepted")
	}
	if err := run([]string{"-plan", planPath, "-out", "x.gif", "-mark", "garbage"}, &out); err == nil {
		t.Error("bad -mark accepted")
	}
	if err := run([]string{"-plan", planPath, "-out", "x.gif", "-vec", "garbage"}, &out); err == nil {
		t.Error("bad -vec accepted")
	}
}
