// experiments regenerates every figure and result in the paper's
// evaluation, plus the ablation studies listed in DESIGN.md §4.
//
// Usage:
//
//	experiments -out out/          # run everything
//	experiments -exp r51 -exp r52  # just the headline results
//	experiments -list              # show experiment ids
//
// Each experiment prints the rows/series the paper reports; figure
// experiments additionally write .gif images under -out.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"indoorloc/internal/cliutil"
)

// experiment is one regenerable artefact.
type experiment struct {
	id    string
	title string
	run   func(w io.Writer, outDir string) error
}

// registry lists the experiments in presentation order.
var registry = []experiment{
	{"fig1", "Figure 1: the six-step two-phase process", runFig1},
	{"fig2", "Figure 2: Floor Plan Processor session", runFig2},
	{"fig3", "Figure 3: floor plan displayed by the Compositor", runFig3},
	{"fig4", "Figure 4: signal strength vs. distance with inverse-square fit", runFig4},
	{"r51", "Result 5.1: probabilistic approach, valid-estimation rate", runR51},
	{"r52", "Result 5.2: geometric approach, average deviation", runR52},
	{"a1", "Ablation A1: kNN neighbour-count sweep", runA1},
	{"a2", "Ablation A2: training-grid spacing sweep", runA2},
	{"a3", "Ablation A3: RSSI noise sweep", runA3},
	{"a4", "Ablation A4: AP count sweep", runA4},
	{"a5", "Ablation A5: tracking filters on a walk (future work 6.2)", runA5},
	{"a6", "Ablation A6: UWB ToA vs RSSI ranging (future work 6.3)", runA6},
	{"a7", "Ablation A7: environmental factors (future work 6.1)", runA7},
	{"a8", "Ablation A8: samples-per-training-point sweep", runA8},
	{"a9", "Ablation A9: regression basis for the distance model", runA9},
	{"a10", "Ablation A10: sector (identifying-code) baseline", runA10},
	{"a11", "Ablation A11: training-map staleness under TxPower drift", runA11},
	{"a12", "Ablation A12: argmax vs posterior-mean position", runA12},
	{"a13", "Ablation A13: AP placement (corners vs optimized)", runA13},
	{"a14", "Ablation A14: drift detection via KS staleness test", runA14},
	{"a15", "Ablation A15: hybrid probabilistic+geometric blend", runA15},
	{"a16", "Ablation A16: room-level resolution via polygons", runA16},
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		outDir = fs.String("out", "out", "directory for generated images")
		list   = fs.Bool("list", false, "list experiment ids and exit")
		exps   cliutil.StringList
	)
	fs.Var(&exps, "exp", "experiment id to run (repeatable; default all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, e := range registry {
			fmt.Fprintf(w, "%-5s %s\n", e.id, e.title)
		}
		return nil
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}
	want := make(map[string]bool, len(exps))
	for _, id := range exps {
		want[id] = true
	}
	known := make(map[string]bool, len(registry))
	for _, e := range registry {
		known[e.id] = true
	}
	var unknown []string
	for id := range want {
		if !known[id] {
			unknown = append(unknown, id)
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("unknown experiment ids %v (use -list)", unknown)
	}
	for _, e := range registry {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Fprintf(w, "=== %s: %s ===\n", e.id, e.title)
		if err := e.run(w, *outDir); err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Fprintln(w)
	}
	return nil
}
