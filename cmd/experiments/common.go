package main

import (
	"fmt"
	"io"

	"indoorloc/internal/compositor"
	"indoorloc/internal/core"
	"indoorloc/internal/eval"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/regress"
	"indoorloc/internal/rf"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

// dataset bundles the Phase 1 artefacts for one scenario run.
type dataset struct {
	scen sim.Scenario
	env  *rf.Environment
	lm   *locmap.Map
	coll *wiscan.Collection
	db   *trainingdb.DB
}

// buildDataset trains the scenario: sweeps scans at every grid point.
func buildDataset(scen sim.Scenario, sweeps int, seed int64) (*dataset, error) {
	env, err := scen.Environment()
	if err != nil {
		return nil, err
	}
	lm, err := scen.TrainingPoints()
	if err != nil {
		return nil, err
	}
	coll := sim.NewScanner(env, seed).CaptureCollection(lm, sweeps)
	db, _, err := trainingdb.Generate(coll, lm, trainingdb.Options{})
	if err != nil {
		return nil, err
	}
	return &dataset{scen: scen, env: env, lm: lm, coll: coll, db: db}, nil
}

// evaluate runs the working phase: obsSweeps scans at each test point,
// averaged and localized, scored against the paper's metrics.
func evaluate(d *dataset, loc localize.Locator, obsSweeps int, seed int64) *eval.Report {
	sc := sim.NewScanner(d.env, seed)
	report := &eval.Report{}
	for _, p := range d.scen.TestPoints {
		obs := localize.ObservationFromRecords(sc.Capture(p, obsSweeps, 0))
		trial := eval.Trial{True: p}
		if want, ok := d.db.NearestEntry(p); ok {
			trial.WantName = want.Name
		}
		est, err := loc.Locate(obs)
		if err != nil {
			trial.Err = err
		} else {
			trial.Est = est.Pos
			trial.EstName = est.Name
		}
		report.Add(trial)
	}
	return report
}

// basis is the reverse-square basis of §5.2, shared by the geometric
// experiments.
var basis = regress.InversePowerBasis{Degree: 2, MinDist: 1}

// annotatedHousePlan rasterises the paper house and copies the
// scenario's annotations onto it.
func annotatedHousePlan(d *dataset) (*floorplan.Plan, error) {
	plan, err := compositor.Blueprint(d.scen.Name, compositor.BlueprintSpec{
		Outline: d.scen.Outline,
		Walls:   d.scen.Walls,
		Title:   d.scen.Name,
	})
	if err != nil {
		return nil, err
	}
	for _, ap := range d.scen.APs {
		px, err := plan.ToPixel(ap.Pos)
		if err != nil {
			return nil, err
		}
		plan.AddAP(ap.BSSID, px)
	}
	for _, name := range d.lm.Names() {
		w, _ := d.lm.Lookup(name)
		px, err := plan.ToPixel(w)
		if err != nil {
			return nil, err
		}
		if err := plan.AddLocation(name, px); err != nil {
			return nil, err
		}
	}
	return plan, nil
}

// printReport writes the standard metric block for one algorithm run.
func printReport(w io.Writer, label string, r *eval.Report) {
	fmt.Fprintf(w, "%-26s valid=%5.1f%%  mean=%5.1f ft  median=%5.1f ft  p90=%5.1f ft  within10=%5.1f%%\n",
		label, 100*r.ValidRate(), r.MeanError(), r.MedianError(),
		r.Percentile(90), 100*r.WithinRate(10))
}

// extraAPs extends the paper house with additional wall-midpoint and
// interior APs for the AP-count sweep.
func extraAPs() []rf.AP {
	return []rf.AP{
		{BSSID: "00:02:2d:00:00:0e", SSID: "house", Pos: geom.Pt(25, 0), TxPower: -30, Channel: 1},
		{BSSID: "00:02:2d:00:00:0f", SSID: "house", Pos: geom.Pt(25, 40), TxPower: -30, Channel: 6},
		{BSSID: "00:02:2d:00:00:10", SSID: "house", Pos: geom.Pt(0, 20), TxPower: -30, Channel: 11},
		{BSSID: "00:02:2d:00:00:11", SSID: "house", Pos: geom.Pt(50, 20), TxPower: -30, Channel: 1},
	}
}

// buildLocator adapts core.New to the experiments' one-shot shape:
// every figure builds a locator, queries it and drops it, so the
// Instance lifecycle is noise at each call site.
func buildLocator(algo string, db *trainingdb.DB, cfg core.BuildConfig) (localize.Locator, error) {
	in, err := core.New(core.WithDB(db), core.WithAlgorithm(algo), core.WithConfig(cfg))
	if err != nil {
		return nil, err
	}
	return in.Service.Locator, nil
}
