package main

import (
	"fmt"
	"io"

	"indoorloc/internal/core"
	"indoorloc/internal/localize"
	"indoorloc/internal/sim"
)

// runR51 reproduces the §5.1 headline: the probabilistic approach's
// valid-estimation rate over the 13 test locations. The paper reports
// 60%.
func runR51(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	report := evaluate(d, ml, 90, 2)
	fmt.Fprintln(w, report.Table())
	printReport(w, "probabilistic (paper §5.1)", report)
	fmt.Fprintln(w, "error CDF:")
	fmt.Fprint(w, report.CDFChart())
	fmt.Fprintf(w, "paper reported: 60%% valid estimations over 13 observations\n")

	// Repeat across seeds for a stable figure: 13 observations is a
	// small sample, so any single seed (like the paper's single run)
	// swings widely.
	var rates []float64
	for seed := int64(1); seed <= 20; seed++ {
		d2, err := buildDataset(withSeed(sim.PaperHouse(), seed), 90, seed)
		if err != nil {
			return err
		}
		ml2, err := buildLocator(core.AlgoProbabilistic, d2.db, core.BuildConfig{})
		if err != nil {
			return err
		}
		rates = append(rates, evaluate(d2, ml2, 90, seed+100).ValidRate())
	}
	fmt.Fprintf(w, "across 20 seeds: valid rate %s\n", summarize(rates, 100, "%"))
	fmt.Fprintf(w, "(13-observation runs are high-variance; the paper's single 60%% run sits inside this band)\n")
	return nil
}

// runR52 reproduces the §5.2 headline: the geometric approach's
// average deviation over the 13 observations. The paper's number is
// corrupted in the available text ("is  feet"); the surviving context
// says coarse-grained, double-digit feet.
func runR52(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	g, err := buildLocator(core.AlgoGeometric, d.db,
		core.BuildConfig{APPositions: d.scen.APPositions()})
	if err != nil {
		return err
	}
	report := evaluate(d, g, 90, 2)
	fmt.Fprintln(w, report.Table())
	printReport(w, "geometric (paper §5.2)", report)
	fmt.Fprintln(w, "error CDF:")
	fmt.Fprint(w, report.CDFChart())
	fmt.Fprintf(w, "average deviation: %.1f ft over %d observations\n",
		report.MeanError(), report.N())

	// Compare combiners: the paper's median-of-intersections against
	// the centroid, geometric-median and least-squares alternatives.
	for _, combo := range []struct {
		label string
		c     localize.Combiner
	}{
		{"median (paper)", localize.CombineMedian},
		{"centroid", localize.CombineCentroid},
		{"geometric median", localize.CombineGeoMedian},
		{"least squares", localize.CombineLeastSquares},
	} {
		gl := g.(*localize.Geometric)
		gl.Combine = combo.c
		printReport(w, "combiner "+combo.label, evaluate(d, gl, 90, 2))
	}

	var means []float64
	for seed := int64(1); seed <= 20; seed++ {
		d2, err := buildDataset(withSeed(sim.PaperHouse(), seed), 90, seed)
		if err != nil {
			return err
		}
		g2, err := buildLocator(core.AlgoGeometric, d2.db,
			core.BuildConfig{APPositions: d2.scen.APPositions()})
		if err != nil {
			return err
		}
		means = append(means, evaluate(d2, g2, 90, seed+100).MeanError())
	}
	fmt.Fprintf(w, "across 20 seeds: mean deviation %s\n", summarize(means, 1, " ft"))
	return nil
}

// withSeed clones a scenario with a different shadow-field seed, so
// repeated runs see genuinely different houses.
func withSeed(s sim.Scenario, seed int64) sim.Scenario {
	s.Radio.Seed = seed
	return s
}

// summarize renders mean ± spread over a small sample.
func summarize(vals []float64, scale float64, unit string) string {
	var mean, min, max float64
	min = vals[0] * scale
	max = min
	for _, v := range vals {
		v *= scale
		mean += v
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	mean /= float64(len(vals))
	return fmt.Sprintf("mean %.1f%s (min %.1f, max %.1f)", mean, unit, min, max)
}
