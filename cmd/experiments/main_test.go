package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1", "fig2", "fig3", "fig4", "r51", "r52",
		"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8"} {
		if !strings.Contains(out.String(), id) {
			t.Errorf("missing %s in -list output", id)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "nope", "-out", t.TempDir()}, &out)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("err = %v", err)
	}
}

func TestFig1TraceShape(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig1", "-out", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for i := 1; i <= 6; i++ {
		if !strings.Contains(s, "step "+string(rune('0'+i))) {
			t.Errorf("trace missing step %d", i)
		}
	}
	if !strings.Contains(s, "phase 2 sample") {
		t.Error("no phase 2 demonstration")
	}
}

func TestFigureOutputsWritten(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig2", "-exp", "fig3", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"fig2-house.plan", "fig2-processor-session.gif", "fig3-compositor.gif",
	} {
		info, err := os.Stat(filepath.Join(dir, f))
		if err != nil || info.Size() == 0 {
			t.Errorf("%s: %v", f, err)
		}
	}
}

func TestHeadlineResultsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed experiment sweep")
	}
	dir := t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-exp", "r51", "-exp", "r52", "-out", dir}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "valid rate mean") {
		t.Error("r51 summary missing")
	}
	if !strings.Contains(s, "mean deviation mean") {
		t.Error("r52 summary missing")
	}
	// The table lists all 13 test observations.
	if got := strings.Count(s, "grid-"); got < 26 {
		t.Errorf("only %d grid references in tables", got)
	}
}

func TestFig4RegressionShape(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-exp", "fig4", "-out", t.TempDir()}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "1/d") || !strings.Contains(s, "R²") {
		t.Errorf("fit line missing from %q", s)
	}
	if !strings.Contains(s, "dist(ft)") {
		t.Error("scatter table missing")
	}
}
