package main

import (
	"fmt"
	"io"
	"math"
	"math/rand"

	"indoorloc/internal/core"
	"indoorloc/internal/eval"
	"indoorloc/internal/filter"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/rf"
	"indoorloc/internal/sim"
	"indoorloc/internal/uwb"
)

// runA1 sweeps the kNN neighbour count against the paper's ML pick.
func runA1(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	printReport(w, "probabilistic ML", evaluate(d, ml, 30, 2))
	for k := 1; k <= 6; k++ {
		knn := localize.NewKNN(d.db, k)
		printReport(w, fmt.Sprintf("knn k=%d", k), evaluate(d, knn, 30, 2))
		wk := localize.NewKNN(d.db, k)
		wk.Weighted = true
		printReport(w, fmt.Sprintf("wknn k=%d", k), evaluate(d, wk, 30, 2))
	}
	return nil
}

// runA2 sweeps the training-grid spacing: finer grids cost more
// training walk but localize tighter.
func runA2(w io.Writer, _ string) error {
	for _, spacing := range []float64{5, 10, 20} {
		scen := sim.PaperHouse()
		scen.GridSpacing = spacing
		d, err := buildDataset(scen, 90, 1)
		if err != nil {
			return err
		}
		ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("spacing %2.0f ft (%d pts)", spacing, d.db.Len())
		printReport(w, label, evaluate(d, ml, 30, 2))
	}
	fmt.Fprintln(w, "note: valid%% compares against each grid's own nearest point;")
	fmt.Fprintln(w, "mean error in feet is the comparable column across rows")
	return nil
}

// runA3 sweeps RSSI noise — the paper's "largest barrier" — for both
// headline algorithms.
func runA3(w io.Writer, _ string) error {
	for _, fast := range []float64{0.5, 1.5, 2.5, 4, 6} {
		scen := sim.PaperHouse()
		scen.Radio = rf.Config{FastSigma: fast}
		d, err := buildDataset(scen, 90, 1)
		if err != nil {
			return err
		}
		ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
		if err != nil {
			return err
		}
		printReport(w, fmt.Sprintf("prob  σfast=%.1f dB", fast), evaluate(d, ml, 30, 2))
		g, err := buildLocator(core.AlgoGeometric, d.db,
			core.BuildConfig{APPositions: scen.APPositions()})
		if err != nil {
			return err
		}
		printReport(w, fmt.Sprintf("geom  σfast=%.1f dB", fast), evaluate(d, g, 30, 2))
	}
	return nil
}

// runA4 sweeps the AP count from 3 to 8.
func runA4(w io.Writer, _ string) error {
	extras := extraAPs()
	for n := 3; n <= 8; n++ {
		scen := sim.PaperHouse()
		if n < len(scen.APs) {
			scen.APs = scen.APs[:n]
		} else {
			scen.APs = append(scen.APs, extras[:n-4]...)
		}
		d, err := buildDataset(scen, 90, 1)
		if err != nil {
			return err
		}
		ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
		if err != nil {
			return err
		}
		printReport(w, fmt.Sprintf("prob  %d APs", n), evaluate(d, ml, 30, 2))
		g, err := buildLocator(core.AlgoGeometric, d.db,
			core.BuildConfig{APPositions: scen.APPositions()})
		if err != nil {
			return err
		}
		printReport(w, fmt.Sprintf("geom  %d APs", n), evaluate(d, g, 30, 2))
	}
	return nil
}

// runA5 evaluates the future-work §6.2 tracking filters on a walk
// through the house.
func runA5(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	// A walk: a lap around the house interior at ~2 ft per observation
	// window.
	var path []geom.Point
	waypoints := []geom.Point{
		geom.Pt(5, 5), geom.Pt(45, 5), geom.Pt(45, 35), geom.Pt(5, 35), geom.Pt(5, 5),
	}
	for i := 0; i+1 < len(waypoints); i++ {
		a, b := waypoints[i], waypoints[i+1]
		steps := int(a.Dist(b) / 2)
		for s := 0; s < steps; s++ {
			path = append(path, a.Lerp(b, float64(s)/float64(steps)))
		}
	}
	// Raw per-step estimates.
	sc := sim.NewScanner(d.env, 9)
	raw := make([]geom.Point, len(path))
	for i, p := range path {
		est, err := ml.Locate(localize.ObservationFromRecords(sc.Capture(p, 5, 0)))
		if err != nil {
			return err
		}
		raw[i] = est.Pos
	}
	filters := []filter.PositionFilter{
		filter.Raw{},
		&filter.EWMA{Alpha: 0.35},
		&filter.Kalman{Dt: 1, ProcessNoise: 0.6, MeasurementNoise: 7},
		&filter.Particle{N: 600, MotionSigma: 2.5, MeasurementSigma: 7,
			Bounds: d.scen.Outline, Rng: rand.New(rand.NewSource(4))},
	}
	for _, f := range filters {
		report := &eval.Report{}
		for i, meas := range raw {
			report.Add(eval.Trial{True: path[i], Est: f.Update(meas)})
		}
		printReport(w, "filter "+f.Name(), report)
	}
	// The RTS smoother sees the whole track at once — the offline
	// ceiling for what history can buy.
	smoothed := filter.SmoothPath(raw, 1, 0.6, 7)
	smoothReport := &eval.Report{}
	for i := range smoothed {
		smoothReport.Add(eval.Trial{True: path[i], Est: smoothed[i]})
	}
	printReport(w, "filter rts-smoother", smoothReport)

	// The grid Bayes filter consumes posteriors, not positions.
	gb := filter.NewGridBayes(pointsOf(d))
	report := &eval.Report{}
	for i, p := range path {
		est, err := ml.Locate(localize.ObservationFromRecords(sc.Capture(p, 5, 0)))
		if err != nil {
			return err
		}
		// Shift the log-likelihood scores by their max before
		// exponentiating so the linear likelihoods stay representable.
		lik := make(map[string]float64, len(est.Candidates))
		maxScore := est.Candidates[0].Score
		for _, c := range est.Candidates {
			lik[c.Name] = math.Exp(c.Score - maxScore)
		}
		_, _, mean := gb.UpdateLikelihood(lik)
		report.Add(eval.Trial{True: path[i], Est: mean})
	}
	printReport(w, "filter grid-bayes", report)
	return nil
}

// pointsOf extracts the training positions by name.
func pointsOf(d *dataset) map[string]geom.Point {
	out := make(map[string]geom.Point, d.db.Len())
	for name, e := range d.db.Entries {
		out[name] = e.Pos
	}
	return out
}

// runA6 contrasts UWB ToA ranging with RSSI-based geometric ranging,
// the paper's future-work §6.3 motivation.
func runA6(w io.Writer, _ string) error {
	scen := sim.PaperHouse()
	d, err := buildDataset(scen, 90, 1)
	if err != nil {
		return err
	}
	g, err := buildLocator(core.AlgoGeometric, d.db,
		core.BuildConfig{APPositions: scen.APPositions()})
	if err != nil {
		return err
	}
	printReport(w, "RSSI geometric", evaluate(d, g, 30, 2))

	anchors := make([]uwb.Anchor, len(scen.APs))
	for i, ap := range scen.APs {
		anchors[i] = uwb.Anchor{ID: ap.BSSID, Pos: ap.Pos}
	}
	sys, err := uwb.NewSystem(anchors, scen.Walls, uwb.Channel{})
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(5))
	report := &eval.Report{}
	for _, p := range scen.TestPoints {
		est, ok := sys.Locate(p, rng)
		trial := eval.Trial{True: p}
		if !ok {
			trial.Err = fmt.Errorf("uwb locate failed")
		} else {
			trial.Est = est
		}
		report.Add(trial)
	}
	printReport(w, "UWB time-of-arrival", report)
	fmt.Fprintf(w, "UWB mean error %.2f ft vs RSSI %.1f ft — the discrete-arrival\n",
		report.MeanError(), evaluate(d, g, 30, 2).MeanError())
	fmt.Fprintln(w, "leading edge dodges the fading that limits RSSI ranging")
	return nil
}

// runA7 runs the §6.1 one-factor-at-a-time environment experiments:
// train clean, observe under each factor.
func runA7(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	printReport(w, "baseline (no factor)", evaluate(d, ml, 30, 2))
	factors := []struct {
		label string
		f     func(rf.AP, geom.Point) float64
	}{
		{"people ×3 in rooms", sim.PeopleFactor([]geom.Point{
			geom.Pt(12, 12), geom.Pt(35, 18), geom.Pt(25, 32),
		}, 2, 3.5)},
		{"high humidity", sim.HumidityFactor(0.06)},
		{"furniture rearranged", sim.FurnitureFactor([]sim.FurnitureBlob{
			{Center: geom.Pt(15, 25), Radius: 3, LossDB: 5},
			{Center: geom.Pt(40, 10), Radius: 4, LossDB: 4},
		})},
		{"hot hardware (-2 dB)", sim.TemperatureFactor(2)},
	}
	for _, fac := range factors {
		d.env.SetExtraLoss(fac.f)
		printReport(w, fac.label, evaluate(d, ml, 30, 2))
	}
	d.env.SetExtraLoss(nil)
	fmt.Fprintln(w, "factors perturb the working phase only: the training map goes stale,")
	fmt.Fprintln(w, "which is exactly the sensitivity §6.1 proposes to study")
	return nil
}

// runA8 sweeps the samples-per-training-point budget: the paper used
// 1.5 minutes (~90 sweeps) and averaged.
func runA8(w io.Writer, _ string) error {
	for _, sweeps := range []int{3, 10, 30, 90, 180} {
		d, err := buildDataset(sim.PaperHouse(), sweeps, 1)
		if err != nil {
			return err
		}
		ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
		if err != nil {
			return err
		}
		label := fmt.Sprintf("%3d sweeps/pt (%.1f min)", sweeps, float64(sweeps)/60)
		printReport(w, label, evaluate(d, ml, 30, 2))
	}
	return nil
}
