package main

import (
	"fmt"
	"io"
	"path/filepath"
	"sort"

	"indoorloc/internal/compositor"
	"indoorloc/internal/core"
	"indoorloc/internal/localize"
	"indoorloc/internal/regress"
	"indoorloc/internal/sim"
	"indoorloc/internal/stats"
)

// runFig1 reproduces Figure 1 by executing the six-step pipeline and
// printing its trace.
func runFig1(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 30, 1)
	if err != nil {
		return err
	}
	pl := &core.Pipeline{
		Collection:  d.coll,
		LocMap:      d.lm,
		Algorithm:   core.AlgoProbabilistic,
		APPositions: d.scen.APPositions(),
	}
	svc, trace, err := pl.Train()
	if err != nil {
		return err
	}
	for _, line := range trace {
		fmt.Fprintln(w, line)
	}
	// Exercise Phase 2 once so the trace is honest.
	sc := sim.NewScanner(d.env, 2)
	res, err := svc.LocateRecords(sc.Capture(d.scen.TestPoints[0], 10, 0))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "phase 2 sample: observed at %v → resolved to %q at %v\n",
		d.scen.TestPoints[0], res.NearestName, res.Estimate.Pos)
	return nil
}

// runFig2 reproduces Figure 2: a complete Floor Plan Processor session
// (the paper shows its GUI; we show the resulting annotated plan and
// render it).
func runFig2(w io.Writer, outDir string) error {
	d, err := buildDataset(sim.PaperHouse(), 5, 1)
	if err != nil {
		return err
	}
	plan, err := annotatedHousePlan(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "plan %q: scale %.4f ft/px, origin %v, %d APs, %d named locations, %d walls\n",
		plan.Name, plan.FeetPerPixel, plan.Origin, len(plan.APs), len(plan.Locations), len(plan.Walls))
	planPath := filepath.Join(outDir, "fig2-house.plan")
	if err := plan.SaveFile(planPath); err != nil {
		return err
	}
	canvas, err := compositor.Render(plan, compositor.RenderOptions{
		DrawAPs: true, DrawLocations: true, DrawWalls: true,
	})
	if err != nil {
		return err
	}
	imgPath := filepath.Join(outDir, "fig2-processor-session.gif")
	if err := canvas.SaveGIF(imgPath); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s and %s\n", planPath, imgPath)
	return nil
}

// runFig3 reproduces Figure 3: the floor plan displayed by the
// Compositor with the 13 test locations and their estimates.
func runFig3(w io.Writer, outDir string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	plan, err := annotatedHousePlan(d)
	if err != nil {
		return err
	}
	sc := sim.NewScanner(d.env, 3)
	var opts compositor.RenderOptions
	opts.DrawAPs = true
	opts.DrawWalls = true
	for _, p := range d.scen.TestPoints {
		obs := sc.Capture(p, 30, 0)
		est, err := ml.Locate(localize.ObservationFromRecords(obs))
		if err != nil {
			continue
		}
		opts.Vectors = append(opts.Vectors, compositor.ErrorVector{Actual: p, Estimated: est.Pos})
	}
	canvas, err := compositor.Render(plan, opts)
	if err != nil {
		return err
	}
	imgPath := filepath.Join(outDir, "fig3-compositor.gif")
	if err := canvas.SaveGIF(imgPath); err != nil {
		return err
	}
	fmt.Fprintf(w, "marked %d actual→estimated pairs; wrote %s\n", len(opts.Vectors), imgPath)
	return nil
}

// runFig4 reproduces Figure 4: one AP's signal-strength-vs-distance
// scatter and its least-squares inverse-square fit.
func runFig4(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	bssid := d.db.BSSIDs[0]
	apPos := d.scen.APPositions()[bssid]
	dists, rssis := d.db.DistanceSamples(bssid, apPos)
	model, err := regress.Fit(basis, dists, rssis)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "AP %s at %v: %d samples\n", bssid, apPos, len(dists))
	fmt.Fprintf(w, "fitted model: %s\n", model)
	fmt.Fprintf(w, "(paper's example fit had the same a + b/d + c/d² shape)\n")
	// Print the binned scatter and the fitted curve like the figure.
	type bin struct {
		d    float64
		run  stats.Running
		pred float64
	}
	bins := map[int]*bin{}
	for i, dist := range dists {
		k := int(dist / 5)
		b, ok := bins[k]
		if !ok {
			b = &bin{d: float64(k)*5 + 2.5}
			bins[k] = b
		}
		b.run.Add(rssis[i])
	}
	var keys []int
	for k := range bins {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	fmt.Fprintf(w, "%-12s %-12s %-10s %-10s %s\n", "dist(ft)", "meanRSSI", "sd", "fit", "n")
	for _, k := range keys {
		b := bins[k]
		fmt.Fprintf(w, "%-12.1f %-12.1f %-10.1f %-10.1f %d\n",
			b.d, b.run.Mean(), b.run.StdDev(), model.Predict(b.d), b.run.N())
	}
	return nil
}
