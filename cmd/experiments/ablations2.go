package main

import (
	"fmt"
	"io"

	"indoorloc/internal/core"
	"indoorloc/internal/eval"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/localize"
	"indoorloc/internal/place"
	"indoorloc/internal/regress"
	"indoorloc/internal/rf"
	"indoorloc/internal/sim"
)

// runA9 compares regression bases for the geometric approach's
// signal↔distance model: the paper's reverse-square a + b/d + c/d²
// against the RADAR-style log-distance shape and plain polynomials.
func runA9(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	bases := []struct {
		label string
		b     regress.Basis
	}{
		{"inverse-square (paper)", regress.InversePowerBasis{Degree: 2, MinDist: 1}},
		{"inverse-linear", regress.InversePowerBasis{Degree: 1, MinDist: 1}},
		{"log-distance (RADAR)", regress.LogDistBasis{MinDist: 1}},
		{"quadratic polynomial", regress.PolynomialBasis{Degree: 2}},
	}
	apPos := d.scen.APPositions()
	for _, bb := range bases {
		g, err := localize.FitGeometric(d.db, apPos, bb.b)
		if err != nil {
			fmt.Fprintf(w, "%-26s fit failed: %v\n", bb.label, err)
			continue
		}
		// Report the per-AP fit quality alongside localization accuracy.
		var r2sum float64
		for _, ap := range g.APs {
			r2sum += ap.Model.R2
		}
		printReport(w, bb.label, evaluate(d, g, 30, 2))
		fmt.Fprintf(w, "%-26s mean per-AP R² = %.3f\n", "", r2sum/float64(len(g.APs)))
	}
	fmt.Fprintln(w, "raw fit quality (R²) does not predict localization accuracy: the")
	fmt.Fprintln(w, "quadratic fits tightest but inverts worst, because what matters is the")
	fmt.Fprintln(w, "model's monotone behaviour over the whole inversion bracket — which the")
	fmt.Fprintln(w, "paper's inverse-square and the log-distance shapes both guarantee")
	return nil
}

// runA10 measures the §2.2 sector (identifying-code) baseline. With
// the paper's four house-wide-audible APs the codes barely
// distinguish locations, which is the documented failure mode; a
// deafened receiver floor restores discrimination.
func runA10(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	sector, err := buildLocator(core.AlgoSector, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	printReport(w, "sector, -94 dBm floor", evaluate(d, sector, 30, 2))

	// Raise the receiver floor so APs drop out with distance: the codes
	// become informative, as the identifying-code literature assumes.
	deaf := sim.PaperHouse()
	deaf.Radio.Floor = -62
	d2, err := buildDataset(deaf, 90, 1)
	if err != nil {
		return err
	}
	sector2, err := buildLocator(core.AlgoSector, d2.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	printReport(w, "sector, -62 dBm floor", evaluate(d2, sector2, 30, 2))
	ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	printReport(w, "probabilistic (reference)", evaluate(d, ml, 30, 2))
	fmt.Fprintln(w, "audible-set codes need APs that drop out with distance; RSSI methods")
	fmt.Fprintln(w, "extract information the sector approach throws away")
	return nil
}

// runA11 quantifies training-map staleness: train at t=0, then observe
// at later times while each AP's transmit level wanders on its own
// slow sinusoid. This is the temporal face of the paper's
// "unstableness" barrier: a fingerprint map is a snapshot, and the
// world drifts away from it.
func runA11(w io.Writer, _ string) error {
	scen := sim.PaperHouse()
	d, err := buildDataset(scen, 90, 1)
	if err != nil {
		return err
	}
	ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
	if err != nil {
		return err
	}
	// Install drift AFTER training, so the database is the clean
	// snapshot; observations then happen at increasing offsets into
	// the drift cycle (period: 6 h, amplitude 3 dB).
	d.env.SetDrift(rf.Drift{Amp: 3, PeriodMillis: 6 * 3_600_000})
	for _, hours := range []float64{0, 0.5, 1, 2, 3} {
		offset := int64(hours * 3_600_000)
		sc := sim.NewScanner(d.env, 2)
		report := &eval.Report{}
		for _, p := range scen.TestPoints {
			obs := localize.ObservationFromRecords(sc.Capture(p, 30, offset))
			trial := eval.Trial{True: p}
			if want, ok := d.db.NearestEntry(p); ok {
				trial.WantName = want.Name
			}
			est, err := ml.Locate(obs)
			if err != nil {
				trial.Err = err
			} else {
				trial.Est = est.Pos
				trial.EstName = est.Name
			}
			report.Add(trial)
		}
		printReport(w, fmt.Sprintf("observe %.1f h after training", hours), report)
	}
	fmt.Fprintln(w, "accuracy tracks the drift cycle rather than decaying monotonically:")
	fmt.Fprintln(w, "when the per-AP sinusoids happen to cancel the stale map still fits,")
	fmt.Fprintln(w, "and near the antinodes error rises sharply — re-calibration (or the")
	fmt.Fprintln(w, "paper's planned factor modelling) is what bounds the worst case")
	return nil
}

// runA12 contrasts the paper's argmax rule — "returns the most
// approximate training location instead" of coordinates — with the
// posterior-weighted mean position, which can land between grid
// points. The symbolic validity metric is unchanged (the argmax name
// still decides it); only the coordinate error moves.
func runA12(w io.Writer, _ string) error {
	d, err := buildDataset(sim.PaperHouse(), 90, 1)
	if err != nil {
		return err
	}
	argmax := localize.NewMaxLikelihood(d.db)
	printReport(w, "argmax (paper)", evaluate(d, argmax, 30, 2))
	expected := localize.NewMaxLikelihood(d.db)
	expected.ExpectedPosition = true
	printReport(w, "posterior mean", evaluate(d, expected, 30, 2))
	fmt.Fprintln(w, "the posterior mean interpolates between grid points, trimming the")
	fmt.Fprintln(w, "coordinate error the half-cell quantisation forces on the argmax")
	return nil
}

// runA13 asks whether the paper's four-corner AP placement was a good
// choice: the greedy placement optimizer proposes 4-AP layouts for
// coverage and for fingerprint distinguishability, and each layout is
// trained and evaluated end to end.
func runA13(w io.Writer, _ string) error {
	base := sim.PaperHouse()
	prob := &place.Problem{
		Candidates: place.GridCandidates(base.Outline, 5),
		Samples:    place.GridCandidates(base.Outline, 10),
		Walls:      base.Walls,
	}

	layouts := []struct {
		label     string
		positions []geom.Point
	}{}
	corners := make([]geom.Point, len(base.APs))
	for i, ap := range base.APs {
		corners[i] = ap.Pos
	}
	layouts = append(layouts, struct {
		label     string
		positions []geom.Point
	}{"corners (paper)", corners})

	for _, obj := range []place.Objective{place.Coverage, place.Distinguishability} {
		prob.Objective = obj
		res, err := place.Greedy(prob, 4)
		if err != nil {
			return err
		}
		layouts = append(layouts, struct {
			label     string
			positions []geom.Point
		}{"greedy " + obj.String(), res.Positions})
	}

	for _, layout := range layouts {
		scen := sim.PaperHouse()
		scen.APs = scen.APs[:0]
		for i, pos := range layout.positions {
			scen.APs = append(scen.APs, rf.AP{
				BSSID:   fmt.Sprintf("00:02:2d:00:01:%02x", i),
				SSID:    "house",
				Pos:     pos,
				TxPower: -30,
				Channel: 1 + 5*(i%3),
			})
		}
		d, err := buildDataset(scen, 90, 1)
		if err != nil {
			return err
		}
		ml, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
		if err != nil {
			return err
		}
		printReport(w, layout.label, evaluate(d, ml, 30, 2))
	}
	fmt.Fprintln(w, "all three layouts land within ~1 ft of each other in mean error, so")
	fmt.Fprintln(w, "the paper's pragmatic corner placement cost little; the coverage-")
	fmt.Fprintln(w, "optimised layout edges it out by pulling APs slightly inward")
	return nil
}

// runA14 closes the loop on A11: instead of silently mislocalizing
// against a stale map, the KS staleness detector compares fresh
// samples at a known location against the training snapshot and
// raises per-AP alarms as the drift grows.
func runA14(w io.Writer, _ string) error {
	scen := sim.PaperHouse()
	d, err := buildDataset(scen, 90, 1)
	if err != nil {
		return err
	}
	// A monitoring station sits at a known training point and
	// periodically re-samples — the cheap way to watch map health.
	station := sim.TrainingName(2, 2)
	pos, _ := d.lm.Lookup(station)
	d.env.SetDrift(rf.Drift{Amp: 3, PeriodMillis: 6 * 3_600_000})
	sc := sim.NewScanner(d.env, 31)
	fmt.Fprintf(w, "monitoring station at %q %v, α=0.01\n", station, pos)
	for _, hours := range []float64{0, 0.5, 1, 1.5, 2, 3} {
		offset := int64(hours * 3_600_000)
		recs := sc.Capture(pos, 120, offset)
		fresh := make(map[string][]float64)
		for _, r := range recs {
			fresh[r.BSSID] = append(fresh[r.BSSID], float64(r.RSSI))
		}
		stale := d.db.Staleness(station, fresh, 0.01)
		if len(stale) == 0 {
			fmt.Fprintf(w, "  t=%.1f h: map healthy\n", hours)
			continue
		}
		for _, s := range stale {
			fmt.Fprintf(w, "  t=%.1f h: %s drifted (KS %.2f > %.2f, mean shift %+.1f dB)\n",
				hours, s.BSSID, s.KS, s.Critical, s.MeanShift)
		}
	}
	fmt.Fprintln(w, "the detector turns A11's silent accuracy loss into an explicit")
	fmt.Fprintln(w, "recalibration signal, AP by AP")
	return nil
}

// runA15 evaluates the hybrid blend of the paper's two approaches
// against each alone, over several seeds (a single 13-point run is too
// noisy to separate methods this close).
func runA15(w io.Writer, _ string) error {
	type totals struct{ prob, geo, hybrid float64 }
	var sum totals
	const seeds = 8
	for seed := int64(1); seed <= seeds; seed++ {
		d, err := buildDataset(withSeed(sim.PaperHouse(), seed), 90, seed)
		if err != nil {
			return err
		}
		cfg := core.BuildConfig{APPositions: d.scen.APPositions()}
		prob, err := buildLocator(core.AlgoProbabilistic, d.db, core.BuildConfig{})
		if err != nil {
			return err
		}
		geo, err := buildLocator(core.AlgoGeometric, d.db, cfg)
		if err != nil {
			return err
		}
		hyb, err := buildLocator(core.AlgoHybrid, d.db, cfg)
		if err != nil {
			return err
		}
		sum.prob += evaluate(d, prob, 30, seed+50).MeanError()
		sum.geo += evaluate(d, geo, 30, seed+50).MeanError()
		sum.hybrid += evaluate(d, hyb, 30, seed+50).MeanError()
	}
	fmt.Fprintf(w, "mean error over %d seeds:\n", seeds)
	fmt.Fprintf(w, "  probabilistic  %5.1f ft\n", sum.prob/seeds)
	fmt.Fprintf(w, "  geometric      %5.1f ft\n", sum.geo/seeds)
	fmt.Fprintf(w, "  hybrid         %5.1f ft\n", sum.hybrid/seeds)
	fmt.Fprintln(w, "the blend tracks the probabilistic method closely and stays far ahead")
	fmt.Fprintln(w, "of pure geometry, but the circles' radius bias costs a little accuracy")
	fmt.Fprintln(w, "even when weighted down — on this floor, fingerprints alone win")
	return nil
}

// runA16 measures room-level resolution: instead of asking for the
// exact training point, the application only needs the right room —
// the granularity the paper's motivating scenarios (call forwarding,
// conference material) actually require. The house is divided into
// four rooms along its interior walls.
func runA16(w io.Writer, _ string) error {
	scen := sim.PaperHouse()
	d, err := buildDataset(scen, 90, 1)
	if err != nil {
		return err
	}
	rooms := []floorplan.Room{
		{Name: "west wing", Poly: geom.Polygon{
			geom.Pt(0, 0), geom.Pt(25, 0), geom.Pt(25, 40), geom.Pt(0, 40)}},
		{Name: "se room", Poly: geom.Polygon{
			geom.Pt(25, 0), geom.Pt(50, 0), geom.Pt(50, 25), geom.Pt(25, 25)}},
		{Name: "ne room", Poly: geom.Polygon{
			geom.Pt(25, 25), geom.Pt(50, 25), geom.Pt(50, 40), geom.Pt(25, 40)}},
	}
	roomOf := func(p geom.Point) string {
		for _, r := range rooms {
			if r.Poly.Contains(p) {
				return r.Name
			}
		}
		return ""
	}
	for _, algo := range []string{core.AlgoProbabilistic, core.AlgoGeometric} {
		loc, err := buildLocator(algo, d.db,
			core.BuildConfig{APPositions: scen.APPositions()})
		if err != nil {
			return err
		}
		sc := sim.NewScanner(d.env, 2)
		hits, total := 0, 0
		for _, p := range scen.TestPoints {
			obs := localize.ObservationFromRecords(sc.Capture(p, 30, 0))
			est, err := loc.Locate(obs)
			if err != nil {
				continue
			}
			total++
			if roomOf(est.Pos) == roomOf(p) {
				hits++
			}
		}
		fmt.Fprintf(w, "%-14s room-level accuracy %d/%d (%.0f%%)\n",
			algo, hits, total, 100*float64(hits)/float64(total))
	}
	fmt.Fprintln(w, "room containment is the granularity the paper's applications need;")
	fmt.Fprintln(w, "even the coarse geometric method usually lands in the right room")
	return nil
}
