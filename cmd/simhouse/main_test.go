package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSimhouseGeneratesDataset(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{"-out", dir, "-sweeps", "5", "-obs-sweeps", "3"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{
		"house.plan", "locations.map", "scans.zip", "train.tdb", "truth.map",
	} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Errorf("missing %s: %v", f, err)
		}
	}
	scans, err := os.ReadDir(filepath.Join(dir, "scans"))
	if err != nil || len(scans) != 30 {
		t.Errorf("scans dir: %d files, err %v", len(scans), err)
	}
	obs, err := os.ReadDir(filepath.Join(dir, "observations"))
	if err != nil || len(obs) != 13 {
		t.Errorf("observations dir: %d files, err %v", len(obs), err)
	}
	if !strings.Contains(out.String(), "30 locations") {
		t.Errorf("output: %q", out.String())
	}
}

func TestSimhouseDeterministic(t *testing.T) {
	read := func(dir string) string {
		b, err := os.ReadFile(filepath.Join(dir, "scans", "grid-0-0.wiscan"))
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	d1, d2 := t.TempDir(), t.TempDir()
	var out bytes.Buffer
	if err := run([]string{"-out", d1, "-sweeps", "4", "-obs-sweeps", "2", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-out", d2, "-sweeps", "4", "-obs-sweeps", "2", "-seed", "9"}, &out); err != nil {
		t.Fatal(err)
	}
	if read(d1) != read(d2) {
		t.Error("same seed produced different capture files")
	}
}

func TestSimhouseErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("missing -out accepted")
	}
	if err := run([]string{"-out", t.TempDir(), "-spacing", "0"}, &out); err == nil {
		t.Error("zero spacing accepted")
	}
}
