// simhouse generates a complete synthetic dataset for the paper's
// experiment house: an annotated floor plan, the training wi-scan
// collection (directory and zip), the location map, the training
// database, and one observation wi-scan per test point with a truth
// file — everything the other tools consume, so the whole toolkit can
// be exercised end to end without radio hardware.
//
// Usage:
//
//	simhouse -out dataset/ [-sweeps 90] [-seed 1] [-spacing 10]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"indoorloc/internal/compositor"
	"indoorloc/internal/locmap"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "simhouse:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("simhouse", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", "", "output directory (required)")
		sweeps  = fs.Int("sweeps", 90, "scan sweeps per training point (paper: 90 ≈ 1.5 min)")
		obsSwps = fs.Int("obs-sweeps", 30, "scan sweeps per test observation")
		seed    = fs.Int64("seed", 1, "random seed")
		spacing = fs.Float64("spacing", 10, "training grid spacing in feet")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *outDir == "" {
		return fmt.Errorf("need -out DIR")
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	scen := sim.PaperHouse()
	scen.GridSpacing = *spacing
	scen.Radio.Seed = *seed
	env, err := scen.Environment()
	if err != nil {
		return err
	}
	lm, err := scen.TrainingPoints()
	if err != nil {
		return err
	}

	// Annotated plan with a rendered blueprint image, so fpcomp can
	// composite over it directly.
	plan, err := compositor.Blueprint(scen.Name, compositor.BlueprintSpec{
		Outline: scen.Outline,
		Walls:   scen.Walls,
		Title:   scen.Name,
	})
	if err != nil {
		return err
	}
	for _, ap := range scen.APs {
		px, err := plan.ToPixel(ap.Pos)
		if err != nil {
			return err
		}
		plan.AddAP(ap.BSSID, px)
	}
	for _, name := range lm.Names() {
		w, _ := lm.Lookup(name)
		px, err := plan.ToPixel(w)
		if err != nil {
			return err
		}
		if err := plan.AddLocation(name, px); err != nil {
			return err
		}
	}
	planPath := filepath.Join(*outDir, "house.plan")
	if err := plan.SaveFile(planPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", planPath)

	// Location map.
	mapPath := filepath.Join(*outDir, "locations.map")
	if err := locmap.WriteFile(mapPath, lm); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d locations)\n", mapPath, lm.Len())

	// Training captures: directory and zip forms.
	scanner := sim.NewScanner(env, *seed)
	coll := scanner.CaptureCollection(lm, *sweeps)
	scanDir := filepath.Join(*outDir, "scans")
	if err := coll.WriteDir(scanDir); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s/ (%d files, %d records)\n", scanDir, len(coll.Files), coll.TotalRecords())
	zipPath := filepath.Join(*outDir, "scans.zip")
	if err := coll.WriteZip(zipPath); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", zipPath)

	// Training database.
	db, _, err := trainingdb.Generate(coll, lm, trainingdb.Options{})
	if err != nil {
		return err
	}
	tdbPath := filepath.Join(*outDir, "train.tdb")
	if err := trainingdb.SaveFile(tdbPath, db); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s (%d entries)\n", tdbPath, db.Len())

	// Test observations + ground truth.
	obsDir := filepath.Join(*outDir, "observations")
	if err := os.MkdirAll(obsDir, 0o755); err != nil {
		return err
	}
	truth := locmap.New()
	for i, p := range scen.TestPoints {
		name := fmt.Sprintf("test-%02d", i+1)
		recs := scanner.Capture(p, *obsSwps, 0)
		f := &wiscan.File{Location: name, Records: recs}
		path := filepath.Join(obsDir, name+".wiscan")
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := wiscan.Write(fh, f); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		if err := truth.Add(name, p); err != nil {
			return err
		}
	}
	truthPath := filepath.Join(*outDir, "truth.map")
	if err := locmap.WriteFile(truthPath, truth); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s/ (%d observations) and %s\n", obsDir, len(scen.TestPoints), truthPath)
	return nil
}
