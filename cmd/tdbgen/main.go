// tdbgen is the Training Database Generator: it joins a collection of
// wi-scan files (a directory or a zip archive, one file per training
// location) with a location map (a text file of names and coordinates)
// and writes the compressed training database the working phase loads.
//
// Usage:
//
//	tdbgen -scans scans/ -map locations.map -out train.tdb
//	tdbgen -scans scans.zip -map locations.map -out train.tdb -skip-unmapped
//
// The location map may also come from an annotated floor plan:
//
//	tdbgen -scans scans/ -plan house.plan -out train.tdb
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/locmap"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tdbgen:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tdbgen", flag.ContinueOnError)
	var (
		scans    = fs.String("scans", "", "wi-scan collection: directory or .zip (required)")
		mapPath  = fs.String("map", "", "location map file")
		planPath = fs.String("plan", "", "annotated plan file to take the location map from")
		outPath  = fs.String("out", "", "output training database (required)")
		skip     = fs.Bool("skip-unmapped", false, "drop wi-scan locations missing from the map instead of failing")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scans == "" || *outPath == "" {
		return fmt.Errorf("need -scans PATH and -out FILE")
	}
	var lm *locmap.Map
	switch {
	case *mapPath != "":
		m, err := locmap.ReadFile(*mapPath)
		if err != nil {
			return err
		}
		lm = m
	case *planPath != "":
		plan, err := floorplan.LoadFile(*planPath)
		if err != nil {
			return err
		}
		lm, err = plan.LocationMap()
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -map FILE or -plan FILE")
	}
	coll, err := wiscan.ReadCollection(*scans)
	if err != nil {
		return err
	}
	db, skipped, err := trainingdb.Generate(coll, lm, trainingdb.Options{SkipUnmapped: *skip})
	if err != nil {
		return err
	}
	for _, s := range skipped {
		fmt.Fprintf(out, "skipped unmapped location %q\n", s)
	}
	if err := trainingdb.SaveFile(*outPath, db); err != nil {
		return err
	}
	info, err := os.Stat(*outPath)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s: %d locations, %d APs, %d samples, %d bytes\n",
		*outPath, db.Len(), len(db.BSSIDs), db.TotalSamples(), info.Size())
	return nil
}
