package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/trainingdb"
)

// writeScan drops a minimal wi-scan file for location name into dir.
func writeScan(t *testing.T, dir, name string) {
	t.Helper()
	content := "1000\taa:bb:cc:00:00:01\tnet\t6\t-60\t-95\n" +
		"2000\taa:bb:cc:00:00:01\tnet\t6\t-62\t-95\n"
	if err := os.WriteFile(filepath.Join(dir, name+".wiscan"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeMap(t *testing.T, dir string, entries ...string) string {
	t.Helper()
	path := filepath.Join(dir, "loc.map")
	if err := os.WriteFile(path, []byte(strings.Join(entries, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTdbgenBasic(t *testing.T) {
	dir := t.TempDir()
	scans := filepath.Join(dir, "scans")
	os.MkdirAll(scans, 0o755)
	writeScan(t, scans, "kitchen")
	writeScan(t, scans, "hall")
	mapPath := writeMap(t, dir, "kitchen\t5\t35", "hall\t25\t20")
	outPath := filepath.Join(dir, "train.tdb")

	var out bytes.Buffer
	if err := run([]string{"-scans", scans, "-map", mapPath, "-out", outPath}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 locations") {
		t.Errorf("output %q", out.String())
	}
	db, err := trainingdb.LoadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 || db.TotalSamples() != 4 {
		t.Errorf("db: %d entries, %d samples", db.Len(), db.TotalSamples())
	}
}

func TestTdbgenSkipUnmapped(t *testing.T) {
	dir := t.TempDir()
	scans := filepath.Join(dir, "scans")
	os.MkdirAll(scans, 0o755)
	writeScan(t, scans, "kitchen")
	writeScan(t, scans, "porch") // unmapped
	mapPath := writeMap(t, dir, "kitchen\t5\t35")
	outPath := filepath.Join(dir, "train.tdb")

	var out bytes.Buffer
	// Strict: fails.
	if err := run([]string{"-scans", scans, "-map", mapPath, "-out", outPath}, &out); err == nil {
		t.Error("unmapped location accepted without -skip-unmapped")
	}
	// Skipping: succeeds and says so.
	out.Reset()
	if err := run([]string{"-scans", scans, "-map", mapPath, "-out", outPath, "-skip-unmapped"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), `skipped unmapped location "porch"`) {
		t.Errorf("output %q", out.String())
	}
}

func TestTdbgenErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-scans", "x", "-out", "y"}, &out); err == nil {
		t.Error("missing map source accepted")
	}
	if err := run([]string{"-scans", "/nonexistent", "-map", "/nope", "-out", "y"}, &out); err == nil {
		t.Error("bad paths accepted")
	}
}
