package main

import (
	"bytes"
	"image"
	"image/color"
	"image/gif"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
)

func writeGIF(t *testing.T, dir string) string {
	t.Helper()
	img := image.NewPaletted(image.Rect(0, 0, 100, 80), color.Palette{color.White, color.Black})
	var buf bytes.Buffer
	if err := gif.Encode(&buf, img, nil); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "floor.gif")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFpprocNewFromGIF(t *testing.T) {
	dir := t.TempDir()
	gifPath := writeGIF(t, dir)
	planPath := filepath.Join(dir, "house.plan")
	var out bytes.Buffer
	err := run([]string{
		"-new", "-name", "test house", "-image", gifPath,
		"-scale", "0,0:100,0:50", // 100 px = 50 ft → 0.5 ft/px
		"-origin", "0,80",
		"-out", planPath,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := floorplan.LoadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Name != "test house" || plan.FeetPerPixel != 0.5 || !plan.HasImage() {
		t.Errorf("plan = %+v", plan)
	}
}

func TestFpprocAnnotateExisting(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "house.plan")
	var out bytes.Buffer
	// Blueprint creation sets scale and origin automatically.
	if err := run([]string{
		"-new", "-name", "bp", "-blueprint", "50x40", "-out", planPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	// Annotate in a second invocation, world coordinates in feet.
	out.Reset()
	if err := run([]string{
		"-plan", planPath,
		"-ap", "A@0,0", "-ap", "B@50,0",
		"-loc", "kitchen@5,35",
		"-wall", "25,0:25,25",
		"-out", planPath, "-info",
	}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"ap: A", "loc: kitchen", "walls: 1", "saved"} {
		if !strings.Contains(s, want) {
			t.Errorf("info output missing %q in %q", want, s)
		}
	}
	plan, err := floorplan.LoadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	pos, err := plan.APPositions()
	if err != nil {
		t.Fatal(err)
	}
	if pos["B"].Dist(geom.Pt(50, 0)) > 0.2 {
		t.Errorf("AP B at %v", pos["B"])
	}
}

func TestFpprocErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out); err == nil {
		t.Error("no mode accepted")
	}
	if err := run([]string{"-new"}, &out); err == nil {
		t.Error("new without -out or -info accepted")
	}
	if err := run([]string{"-new", "-blueprint", "banana", "-out", "x"}, &out); err == nil {
		t.Error("bad blueprint accepted")
	}
	if err := run([]string{"-plan", "/nonexistent", "-info"}, &out); err == nil {
		t.Error("missing plan accepted")
	}
	// AP before scale on a bare plan: conversion must fail loudly.
	if err := run([]string{"-new", "-ap", "A@1,1", "-out", filepath.Join(t.TempDir(), "p")}, &out); err == nil {
		t.Error("AP without scale accepted")
	}
	if err := run([]string{"-new", "-scale", "0,0:0,0:5", "-out", "x"}, &out); err == nil {
		t.Error("degenerate scale accepted")
	}
}

func TestFpprocEditorOps(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "house.plan")
	var out bytes.Buffer
	if err := run([]string{
		"-new", "-blueprint", "50x40",
		"-ap", "A@0,0", "-ap", "B@50,0",
		"-loc", "kitchen@5,35", "-loc", "hall@25,20",
		"-wall", "25,0:25,25",
		"-out", planPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if err := run([]string{
		"-plan", planPath,
		"-rm-ap", "B",
		"-rm-loc", "hall",
		"-rename-loc", "kitchen=scullery",
		"-clear-walls",
		"-validate",
		"-out", planPath,
	}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "plan is consistent") {
		t.Errorf("output %q", out.String())
	}
	plan, err := floorplan.LoadFile(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.APs) != 1 || plan.APs[0].Name != "A" {
		t.Errorf("APs = %v", plan.APs)
	}
	if got := plan.LocationNames(); len(got) != 1 || got[0] != "scullery" {
		t.Errorf("locations = %v", got)
	}
	if len(plan.Walls) != 0 {
		t.Errorf("walls = %v", plan.Walls)
	}
}

func TestFpprocEditorErrors(t *testing.T) {
	dir := t.TempDir()
	planPath := filepath.Join(dir, "p.plan")
	var out bytes.Buffer
	if err := run([]string{"-new", "-blueprint", "10x10", "-loc", "a@1,1", "-out", planPath}, &out); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-plan", planPath, "-rm-ap", "ghost", "-out", planPath}, &out); err == nil {
		t.Error("rm-ap ghost accepted")
	}
	if err := run([]string{"-plan", planPath, "-rm-loc", "ghost", "-out", planPath}, &out); err == nil {
		t.Error("rm-loc ghost accepted")
	}
	if err := run([]string{"-plan", planPath, "-rename-loc", "nonsense", "-out", planPath}, &out); err == nil {
		t.Error("bad rename syntax accepted")
	}
	if err := run([]string{"-plan", planPath, "-rename-loc", "ghost=x", "-out", planPath}, &out); err == nil {
		t.Error("rename ghost accepted")
	}
}
