// fpproc is the Floor Plan Processor: it builds and annotates floor
// plans from the command line, mirroring the six functions of the
// paper's GUI tool — load a GIF floor plan, add access points, set the
// scale, set the origin, add location names, and save.
//
// Usage examples:
//
//	# Start a plan from a scanned GIF, scale it (two clicked pixels
//	# are 50 ft apart), set the origin pixel, and save.
//	fpproc -new -name "experiment house" -image floor.gif \
//	    -scale 20,340:420,340:50 -origin 20,340 -out house.plan
//
//	# Or rasterise a synthetic blueprint instead of scanning one.
//	fpproc -new -name "experiment house" -blueprint 50x40 -out house.plan
//
//	# Annotate an existing plan with APs and named locations
//	# (coordinates in feet in the plan frame).
//	fpproc -plan house.plan -ap A@0,0 -ap B@50,0 -ap C@50,40 -ap D@0,40 \
//	    -loc kitchen@5,35 -loc "room D22@45,10" -out house.plan
//
//	# Inspect a plan.
//	fpproc -plan house.plan -info
//
// AP and location coordinates are given in feet (world frame) and are
// converted to pixels through the plan's scale and origin, because a
// command line has no mouse to click with.
package main

import (
	"flag"
	"fmt"
	"image"
	"io"
	"os"
	"strings"

	"indoorloc/internal/cliutil"
	"indoorloc/internal/compositor"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fpproc:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fpproc", flag.ContinueOnError)
	var (
		newPlan   = fs.Bool("new", false, "start a new plan")
		name      = fs.String("name", "floor plan", "plan name (with -new)")
		planPath  = fs.String("plan", "", "existing plan file to annotate")
		imagePath = fs.String("image", "", "GIF floor plan image to load")
		blueprint = fs.String("blueprint", "", "generate a WxH-feet blueprint instead of loading a GIF, e.g. 50x40")
		scaleArg  = fs.String("scale", "", "set scale: \"x1,y1:x2,y2:feet\" (pixels and the real distance)")
		originArg = fs.String("origin", "", "set origin pixel: \"x,y\"")
		outPath   = fs.String("out", "", "where to save the plan")
		info      = fs.Bool("info", false, "print a summary of the plan")
		validate  = fs.Bool("validate", false, "check the plan's consistency and fail if broken")
		clearWall = fs.Bool("clear-walls", false, "remove every wall")
		aps       cliutil.StringList
		locs      cliutil.StringList
		walls     cliutil.StringList
		rmAPs     cliutil.StringList
		rmLocs    cliutil.StringList
		renames   cliutil.StringList
	)
	fs.Var(&aps, "ap", "add an access point: \"name@x,y\" in feet (repeatable)")
	fs.Var(&locs, "loc", "add a named location: \"name@x,y\" in feet (repeatable)")
	fs.Var(&walls, "wall", "add a wall: \"x1,y1:x2,y2\" in feet (repeatable)")
	fs.Var(&rmAPs, "rm-ap", "remove an access point by name (repeatable)")
	fs.Var(&rmLocs, "rm-loc", "remove a named location (repeatable)")
	fs.Var(&renames, "rename-loc", "rename a location: \"old=new\" (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var plan *floorplan.Plan
	switch {
	case *newPlan && *blueprint != "":
		var w, h float64
		if _, err := fmt.Sscanf(strings.ToLower(*blueprint), "%fx%f", &w, &h); err != nil {
			return fmt.Errorf("-blueprint wants WxH in feet, got %q", *blueprint)
		}
		var err error
		plan, err = compositor.Blueprint(*name, compositor.BlueprintSpec{
			Outline: geom.RectWH(0, 0, w, h),
			Title:   *name,
		})
		if err != nil {
			return err
		}
	case *newPlan:
		plan = floorplan.New(*name)
	case *planPath != "":
		var err error
		plan, err = floorplan.LoadFile(*planPath)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("need -new or -plan FILE")
	}

	if *imagePath != "" {
		if err := plan.LoadImageFile(*imagePath); err != nil {
			return err
		}
	}
	if *scaleArg != "" {
		a, b, dist, err := cliutil.ParseScale(*scaleArg)
		if err != nil {
			return err
		}
		if err := plan.SetScale(toImagePt(a), toImagePt(b), units.Feet(dist)); err != nil {
			return err
		}
	}
	if *originArg != "" {
		p, err := cliutil.ParsePoint(*originArg)
		if err != nil {
			return err
		}
		plan.SetOrigin(toImagePt(p))
	}
	for _, arg := range aps {
		np, err := cliutil.ParseNamedPoint(arg)
		if err != nil {
			return fmt.Errorf("-ap %s", err)
		}
		px, err := plan.ToPixel(np.Pos)
		if err != nil {
			return fmt.Errorf("-ap %q: %w (set -scale first)", arg, err)
		}
		plan.AddAP(np.Name, px)
	}
	for _, arg := range locs {
		np, err := cliutil.ParseNamedPoint(arg)
		if err != nil {
			return fmt.Errorf("-loc %s", err)
		}
		px, err := plan.ToPixel(np.Pos)
		if err != nil {
			return fmt.Errorf("-loc %q: %w (set -scale first)", arg, err)
		}
		if err := plan.AddLocation(np.Name, px); err != nil {
			return err
		}
	}
	for _, arg := range walls {
		seg, err := cliutil.ParseSegment(arg)
		if err != nil {
			return fmt.Errorf("-wall %s", err)
		}
		plan.AddWall(seg)
	}
	for _, name := range rmAPs {
		if !plan.RemoveAP(name) {
			return fmt.Errorf("-rm-ap: no AP %q", name)
		}
	}
	for _, name := range rmLocs {
		if !plan.RemoveLocation(name) {
			return fmt.Errorf("-rm-loc: no location %q", name)
		}
	}
	for _, arg := range renames {
		old, new, ok := strings.Cut(arg, "=")
		if !ok {
			return fmt.Errorf("-rename-loc wants \"old=new\", got %q", arg)
		}
		if err := plan.RenameLocation(strings.TrimSpace(old), strings.TrimSpace(new)); err != nil {
			return err
		}
	}
	if *clearWall {
		plan.ClearWalls()
	}
	if *validate {
		if err := plan.Validate(); err != nil {
			return err
		}
		fmt.Fprintln(out, "plan is consistent")
	}

	if *info {
		printInfo(out, plan)
	}
	if *outPath != "" {
		if err := plan.SaveFile(*outPath); err != nil {
			return err
		}
		fmt.Fprintf(out, "saved %s\n", *outPath)
	} else if !*info && !*validate {
		return fmt.Errorf("nothing to do: pass -out FILE, -info or -validate")
	}
	return nil
}

func toImagePt(p geom.Point) image.Point {
	return image.Pt(int(p.X), int(p.Y))
}

func printInfo(out io.Writer, plan *floorplan.Plan) {
	fmt.Fprintf(out, "plan: %s\n", plan.Name)
	if plan.HasImage() {
		b := plan.Image().Bounds()
		fmt.Fprintf(out, "image: %dx%d px\n", b.Dx(), b.Dy())
	} else {
		fmt.Fprintln(out, "image: none")
	}
	fmt.Fprintf(out, "scale: %.4f ft/px\norigin: %v\n", plan.FeetPerPixel, plan.Origin)
	for _, ap := range plan.APs {
		if w, err := plan.ToWorld(ap.Pixel); err == nil {
			fmt.Fprintf(out, "ap: %s at %v\n", ap.Name, w)
		} else {
			fmt.Fprintf(out, "ap: %s at pixel %v\n", ap.Name, ap.Pixel)
		}
	}
	for _, loc := range plan.Locations {
		if w, err := plan.ToWorld(loc.Pixel); err == nil {
			fmt.Fprintf(out, "loc: %s at %v\n", loc.Name, w)
		} else {
			fmt.Fprintf(out, "loc: %s at pixel %v\n", loc.Name, loc.Pixel)
		}
	}
	fmt.Fprintf(out, "walls: %d\n", len(plan.Walls))
}
