// locserved serves a trained location service over HTTP — the
// "install a software location system in the host machine" endpoint
// the paper's applications (call forwarding, conference material,
// surveillance) would talk to.
//
// Usage:
//
//	locserved -db train.tdb -listen :8080
//	locserved -db train.tdb -algo geometric -plan house.plan -listen 127.0.0.1:9000
//	locserved -db big.tdb -shards 8 -shard-cutover 512 -batch-max 1024
//
// Endpoints: GET /healthz /algorithms /locations, POST /locate,
// POST /locate/batch, POST/DELETE /track/{client}. See internal/server
// for the schema.
//
// The serving knobs: -shards splits one query's radio-map scan across
// CPUs on large maps (0 = one shard per CPU), -shard-cutover sets the
// map size below which a scan stays single-threaded (0 = the package
// default; small maps gain nothing from fan-out), and -batch-max caps
// the observations accepted by one /locate/batch request.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"indoorloc/internal/core"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/server"
	"indoorloc/internal/trainingdb"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "locserved:", err)
		os.Exit(1)
	}
}

// run builds the server and serves on the listener. When ready is
// non-nil the bound address is sent on it once listening (tests use
// this to avoid port races); pass nil in production.
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("locserved", flag.ContinueOnError)
	var (
		dbPath   = fs.String("db", "", "training database (required)")
		algo     = fs.String("algo", core.AlgoProbabilistic, fmt.Sprintf("algorithm %v", core.Algorithms()))
		planPath = fs.String("plan", "", "annotated plan supplying AP positions (geometric algorithms)")
		listen   = fs.String("listen", "127.0.0.1:8080", "listen address")
		shards   = fs.Int("shards", 0, "row shards per radio-map scan (0 = one per CPU)")
		cutover  = fs.Int("shard-cutover", 0,
			fmt.Sprintf("min training entries before a scan shards (0 = %d)", localize.DefaultShardCutover))
		batchMax = fs.Int("batch-max", server.DefaultMaxBatch, "max observations per /locate/batch request")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return errors.New("need -db FILE")
	}
	if *batchMax <= 0 {
		return errors.New("-batch-max must be positive")
	}
	db, err := trainingdb.LoadFile(*dbPath)
	if err != nil {
		return err
	}
	cfg := core.BuildConfig{Shards: *shards, ShardCutover: *cutover}
	var names *locmap.Map
	if *planPath != "" {
		plan, err := floorplan.LoadFile(*planPath)
		if err != nil {
			return err
		}
		cfg.APPositions, err = plan.APPositions()
		if err != nil {
			return err
		}
		if names, err = plan.LocationMap(); err != nil {
			return err
		}
	}
	if names == nil {
		// Resolve names against the training locations themselves.
		names = locmap.New()
		for _, name := range db.Names() {
			if err := names.Add(name, db.Entries[name].Pos); err != nil {
				return err
			}
		}
	}
	locator, err := core.BuildLocator(*algo, db, cfg)
	if err != nil {
		return err
	}
	srv, err := server.New(&core.Service{DB: db, Locator: locator, Names: names}, nil)
	if err != nil {
		return err
	}
	srv.MaxBatch = *batchMax
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "locserved: %s algorithm over %d locations, listening on %s\n",
		locator.Name(), db.Len(), ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	return http.Serve(ln, srv)
}
