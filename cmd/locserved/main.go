// locserved serves a trained location service over HTTP — the
// "install a software location system in the host machine" endpoint
// the paper's applications (call forwarding, conference material,
// surveillance) would talk to.
//
// Usage:
//
//	locserved -db train.tdb -listen :8080
//	locserved -db train.tdb -algo geometric -plan house.plan -listen 127.0.0.1:9000
//	locserved -db big.tdb -shards 8 -shard-cutover 512 -batch-max 1024
//	locserved -db train.tdb -train-wal reports.wal -train-flush-count 128
//	locserved -map-file campus.ilr -quantize -topk 8
//	locserved -db train.tdb -train-wal reports.wal -train-artifact live.ilr
//
// Endpoints: GET /healthz /algorithms /locations, POST /locate,
// POST /locate/batch, POST/DELETE /track/{client}, and — with
// -train-wal — POST /train/report. See internal/server for the schema.
//
// The serving knobs: -shards splits one query's radio-map scan across
// CPUs on large maps (0 = one shard per CPU), -shard-cutover sets the
// map size below which a scan stays single-threaded (0 = the package
// default; small maps gain nothing from fan-out), and -batch-max caps
// the observations accepted by one /locate/batch request. -quantize
// serves the int16-quantized radio map (about a quarter of the float64
// matrix footprint, accuracy bounds documented in DESIGN.md), and
// -topk N replaces the full candidate sort with a bounded heap
// selection of the best N — both apply to the probabilistic and kNN
// families.
//
// -map-file serves a compiled radio-map artifact (the v2 binary
// `tdbtool compile` writes) instead of a training database: the file
// is memory-mapped read-only, so startup does no compilation and
// matrix pages fault in on demand. Artifact mode supports the
// probabilistic, nnss/knn/wknn and sector algorithms and excludes
// -train-wal (live training folds raw samples, which the artifact does
// not carry). With -train-wal, -train-artifact PATH writes the freshly
// compiled radio map to PATH after every hot swap, so a follow-up
// -map-file deployment picks up where live training left off.
//
// The live-training knobs (all gated on -train-wal, which names the
// durable report journal): -train-queue bounds the accepted-but-
// unfolded backlog (a full queue answers 429 + Retry-After),
// -train-flush-count and -train-flush-interval set the radio-map
// recompile cadence, -train-snap-radius folds coordinate-only reports
// into an existing training point within that many feet, and
// -train-sync fsyncs the journal on every accepted batch. On startup
// the journal is replayed, so a crash or restart loses no accepted
// report.
//
// Replication turns one trainer into a read fleet. On the trainer,
// -replicate (needs -train-wal) exposes GET /v1/replicate/snapshot
// and GET /v1/replicate/wal; on each follower, -follow=<trainer-url>
// replaces -db/-map-file entirely — the follower bootstraps its radio
// map from the trainer's snapshot, tails the WAL folding every report
// exactly as the trainer does, and hot-swaps on every trainer publish.
// Followers are read-only (POST /train/report answers 409
// venue_frozen) and report replication lag on /healthz and /metrics.
// -follow-timeout bounds the wait for the first bootstrap.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"time"

	"indoorloc/internal/core"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/ingest"
	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/repl"
	"indoorloc/internal/server"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/venue"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "locserved:", err)
		os.Exit(1)
	}
}

// run builds the server and serves on the listener. When ready is
// non-nil the bound address is sent on it once listening (tests use
// this to avoid port races); pass nil in production.
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("locserved", flag.ContinueOnError)
	var (
		dbPath       = fs.String("db", "", "training database (required unless -map-file or -venues)")
		mapFile      = fs.String("map-file", "", "compiled radio-map artifact (v2 binary) to serve, memory-mapped; replaces -db")
		venueDir     = fs.String("venues", "", "artifact directory for multi-venue serving (<id>.ilr / <id>.tdb per venue); replaces -db/-map-file and exposes /v1/venues/{venue}/...")
		venueBudget  = fs.Int64("venues-budget", 0, "LRU memory budget in bytes over resident venues (0 = unbounded)")
		venueDefault = fs.String("default-venue", "", "venue the legacy unversioned routes alias onto (empty = aliases answer venue_not_found)")
		venueWALDir  = fs.String("venues-wal-dir", "", "directory of per-venue ingest journals; gives every .tdb venue live training")
		algo         = fs.String("algo", core.AlgoProbabilistic, fmt.Sprintf("algorithm %v", core.Algorithms()))
		planPath     = fs.String("plan", "", "annotated plan supplying AP positions (geometric algorithms)")
		listen       = fs.String("listen", "127.0.0.1:8080", "listen address")
		shards       = fs.Int("shards", 0, "row shards per radio-map scan (0 = one per CPU)")
		cutover      = fs.Int("shard-cutover", 0,
			fmt.Sprintf("min training entries before a scan shards (0 = %d)", localize.DefaultShardCutover))
		batchMax  = fs.Int("batch-max", server.DefaultMaxBatch, "max observations per /locate/batch request")
		maxBody   = fs.Int64("max-body", 0, "request body cap in bytes for every route (0 = per-route defaults: 1 MiB, 8 MiB batch/train)")
		routeTO   = fs.Duration("route-timeout", 0, "per-route handler deadline; overruns answer 503 (0 = off, keeps the hot path allocation-free)")
		metricsOn = fs.Bool("metrics", true, "expose Prometheus metrics at GET /metrics")
		accessLog = fs.String("access-log", "", "append one line per request here via the drop-oldest ring ('-' = stderr)")
		quantize  = fs.Bool("quantize", false, "serve the int16-quantized radio map (~4× smaller matrices)")
		topK      = fs.Int("topk", 0, "bound rankings to the best K candidates via heap selection (0 = full sort)")

		trainWAL      = fs.String("train-wal", "", "report journal path; enables live training via POST /train/report")
		trainQueue    = fs.Int("train-queue", 0, "bounded ingest queue depth (0 = 1024)")
		trainCount    = fs.Int("train-flush-count", 0, "reports folded before a radio-map recompile (0 = 256)")
		trainIvl      = fs.Duration("train-flush-interval", 0, "max time folded reports wait for a recompile (0 = 2s)")
		trainSnap     = fs.Float64("train-snap-radius", 0, "feet within which coordinate reports fold into an existing entry (0 = 10)")
		trainSync     = fs.Bool("train-sync", false, "fsync the report journal on every accepted batch")
		trainArtifact = fs.String("train-artifact", "", "write the compiled radio map as a v2 artifact here after every swap")

		replicate = fs.Bool("replicate", false, "expose GET /v1/replicate/{snapshot,wal} for followers; needs -train-wal")
		follow    = fs.String("follow", "", "trainer base URL; serve as a read-only replication follower (replaces -db/-map-file)")
		followTO  = fs.Duration("follow-timeout", 0, "max wait for the follower's first snapshot bootstrap (0 = 1m)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	sources := 0
	for _, set := range []bool{*dbPath != "", *mapFile != "", *venueDir != "", *follow != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return errors.New("need exactly one of -db FILE, -map-file FILE, -venues DIR or -follow URL")
	}
	if *follow != "" && (*trainWAL != "" || *planPath != "") {
		// A follower's map and names come from the trainer; local
		// training would fork the replicated history.
		return errors.New("-follow replicates the trainer's map; -train-wal and -plan do not apply")
	}
	if *follow == "" && *followTO != 0 {
		return errors.New("-follow-timeout needs -follow URL")
	}
	if *followTO < 0 {
		return errors.New("-follow-timeout must be non-negative")
	}
	if *replicate && *trainWAL == "" {
		return errors.New("-replicate streams the report journal; it needs -train-wal FILE")
	}
	if *venueDir == "" && (*venueBudget != 0 || *venueDefault != "" || *venueWALDir != "") {
		return errors.New("-venues-budget, -default-venue and -venues-wal-dir need -venues DIR")
	}
	if *venueDir != "" && *trainWAL != "" {
		return errors.New("-venues uses per-venue journals via -venues-wal-dir, not -train-wal")
	}
	if *batchMax <= 0 {
		return errors.New("-batch-max must be positive")
	}
	if *topK < 0 {
		return errors.New("-topk must be non-negative")
	}
	if *trainWAL == "" && (*trainQueue != 0 || *trainCount != 0 || *trainIvl != 0 ||
		*trainSnap != 0 || *trainSync || *trainArtifact != "") {
		return errors.New("-train-* flags need -train-wal FILE")
	}
	if *trainQueue < 0 || *trainCount < 0 || *trainIvl < 0 || *trainSnap < 0 {
		return errors.New("-train-* values must be non-negative")
	}
	if *mapFile != "" && *trainWAL != "" {
		return errors.New("-map-file serves a frozen artifact; live training needs -db")
	}
	if *maxBody < 0 || *routeTO < 0 {
		return errors.New("-max-body and -route-timeout must be non-negative")
	}
	var opts []server.Option
	if *maxBody > 0 {
		opts = append(opts, server.WithMaxBody(*maxBody))
	}
	if *routeTO > 0 {
		opts = append(opts, server.WithRouteTimeout(*routeTO))
	}
	if !*metricsOn {
		opts = append(opts, server.WithoutMetrics())
	}
	if *accessLog != "" {
		// The wrapper hides *os.File's Closer from the logger's Close
		// (via srv.Close), which would otherwise close process stderr
		// and eat any error printed after shutdown.
		w := io.Writer(struct{ io.Writer }{os.Stderr})
		if *accessLog != "-" {
			f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return err
			}
			// server.Close closes the file through the logger.
			w = f
		}
		opts = append(opts, server.WithAccessLog(w))
	}
	cfg := core.BuildConfig{Shards: *shards, ShardCutover: *cutover,
		Quantize: *quantize, TopK: *topK}
	var planNames *locmap.Map
	if *planPath != "" {
		plan, err := floorplan.LoadFile(*planPath)
		if err != nil {
			return err
		}
		cfg.APPositions, err = plan.APPositions()
		if err != nil {
			return err
		}
		if planNames, err = plan.LocationMap(); err != nil {
			return err
		}
	}
	var srv *server.Server
	var mgr *ingest.Manager
	var venues *venue.Registry
	var fol *repl.Follower
	switch {
	case *follow != "":
		// Follower mode: the radio map is the trainer's, bootstrapped
		// from its snapshot endpoint and kept current by tailing its
		// WAL. The process serves reads only.
		to := *followTO
		if to == 0 {
			to = time.Minute
		}
		var err error
		fol, err = repl.NewFollower(repl.FollowerConfig{
			TrainerURL: *follow,
			Algorithm:  *algo,
			Build:      cfg,
		})
		if err != nil {
			return err
		}
		bctx, cancel := context.WithTimeout(context.Background(), to)
		err = fol.Start(bctx)
		cancel()
		if err != nil {
			return err
		}
		defer fol.Close()
		if srv, err = server.NewFollower(fol, nil, opts...); err != nil {
			return err
		}
	case *venueDir != "":
		// Multi-venue mode: one process hosts every venue in the
		// directory, lazily loaded and LRU-evicted under the budget.
		var err error
		venues, err = venue.NewRegistry(venue.Config{
			Dir:       *venueDir,
			Algorithm: *algo,
			Build:     cfg,
			MaxBytes:  *venueBudget,
			WALDir:    *venueWALDir,
			Ingest: ingest.Config{
				SyncEveryAppend: *trainSync,
				QueueDepth:      *trainQueue,
				FlushReports:    *trainCount,
				FlushInterval:   *trainIvl,
				SnapRadius:      *trainSnap,
			},
			Default: *venueDefault,
		})
		if err != nil {
			return err
		}
		defer venues.Close()
		if srv, err = server.NewMultiVenue(venues, nil, opts...); err != nil {
			return err
		}
	case *mapFile != "":
		// Artifact mode: the v2 binary is memory-mapped and served
		// directly — no raw database, no recompilation at startup.
		in, err := core.New(core.WithCompiledFile(*mapFile), core.WithAlgorithm(*algo), core.WithConfig(cfg))
		if err != nil {
			return err
		}
		defer in.Close()
		if planNames != nil {
			in.Service.Names = planNames
		}
		if srv, err = server.New(in.Service, nil, opts...); err != nil {
			return err
		}
	default:
		db, err := trainingdb.LoadFile(*dbPath)
		if err != nil {
			return err
		}
		// rebuild turns a frozen database into a warmed serving state: the
		// locator compiled from exactly that entry set, plus name
		// resolution covering it (the plan's names when given, else the
		// training locations themselves — including any entries live
		// training founded).
		rebuild := func(db *trainingdb.DB) (*core.Service, error) {
			nopts := []core.Option{core.WithDB(db), core.WithAlgorithm(*algo), core.WithConfig(cfg)}
			if planNames != nil {
				nopts = append(nopts, core.WithNames(planNames))
			} else {
				nopts = append(nopts, core.WithEntryNames())
			}
			in, err := core.New(nopts...)
			if err != nil {
				return nil, err
			}
			return in.Service, nil
		}

		if *trainWAL != "" {
			icfg := ingest.Config{
				WALPath:         *trainWAL,
				SyncEveryAppend: *trainSync,
				QueueDepth:      *trainQueue,
				FlushReports:    *trainCount,
				FlushInterval:   *trainIvl,
				SnapRadius:      *trainSnap,
				ArtifactPath:    *trainArtifact,
			}
			var src *repl.Source
			if *replicate {
				src = repl.NewSource(repl.SourceConfig{})
				icfg.OnPublish = src.OnPublish
				opts = append(opts, server.WithReplicationSource(src))
			}
			mgr, err = ingest.NewManager(db, rebuild, icfg)
			if err != nil {
				return err
			}
			defer mgr.Close()
			if src != nil {
				src.Bind(mgr)
			}
			if srv, err = server.NewLive(mgr, nil, opts...); err != nil {
				return err
			}
		} else {
			svc, err := rebuild(db)
			if err != nil {
				return err
			}
			if srv, err = server.New(svc, nil, opts...); err != nil {
				return err
			}
		}
	}
	srv.MaxBatch = *batchMax
	defer srv.Close()
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		return err
	}
	if venues != nil {
		list, err := venues.List()
		if err != nil {
			return err
		}
		mode := fmt.Sprintf("budget %d bytes", *venueBudget)
		if *venueBudget == 0 {
			mode = "unbounded budget"
		}
		fmt.Fprintf(out, "locserved: %s algorithm over %d venues in %s (%s, lazy load), listening on %s\n",
			*algo, len(list), *venueDir, mode, ln.Addr())
	} else {
		snap := srv.Snapshot()
		mode := "static map"
		if *mapFile != "" {
			mode = fmt.Sprintf("compiled artifact %s", *mapFile)
		}
		if mgr != nil {
			st := mgr.Stats()
			mode = fmt.Sprintf("live training via %s (%d replayed)", *trainWAL, st.Replayed)
			if *replicate {
				mode += ", replicating"
			}
		}
		if fol != nil {
			mode = fmt.Sprintf("following %s at generation %d", *follow, fol.Stats().Generation)
		}
		fmt.Fprintf(out, "locserved: %s algorithm over %d locations (%s), listening on %s\n",
			snap.Service.Locator.Name(), snap.Service.DB.Len(), mode, ln.Addr())
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	// The listener-side request limits the in-process router cannot
	// enforce: a header budget (the router's body and path caps have a
	// header sibling here), a header read deadline against slowloris
	// clients, and an idle keep-alive deadline so abandoned connections
	// do not pin goroutines.
	hs := &http.Server{
		Handler:           srv,
		MaxHeaderBytes:    64 << 10,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	return hs.Serve(ln)
}
