package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"testing"
	"time"

	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

func makeDB(t *testing.T) string {
	t.Helper()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	coll := sim.NewScanner(env, 5).CaptureCollection(grid, 10)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.tdb")
	if err := trainingdb.SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServeEndToEnd(t *testing.T) {
	dbPath := makeDB(t)
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errCh <- run([]string{"-db", dbPath, "-listen", "127.0.0.1:0"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	if body["locations"].(float64) != 30 {
		t.Errorf("healthz body: %v", body)
	}
	// One live locate through the real TCP stack.
	obsBody := []byte(`{"observation":{"00:02:2d:00:00:0a":-50,"00:02:2d:00:00:0b":-62,"00:02:2d:00:00:0c":-70,"00:02:2d:00:00:0d":-64}}`)
	r2, err := http.Post("http://"+addr+"/locate", "application/json", bytes.NewReader(obsBody))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Fatalf("locate: %d", r2.StatusCode)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, nil); err == nil {
		t.Error("no -db accepted")
	}
	if err := run([]string{"-db", "/nope"}, &out, nil); err == nil {
		t.Error("missing db accepted")
	}
	dbPath := makeDB(t)
	if err := run([]string{"-db", dbPath, "-algo", "bogus"}, &out, nil); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := run([]string{"-db", dbPath, "-algo", "geometric"}, &out, nil); err == nil {
		t.Error("geometric without plan accepted")
	}
	if err := run([]string{"-db", dbPath, "-listen", "256.0.0.1:0"}, &out, nil); err == nil {
		t.Error("bad listen address accepted")
	}
}
