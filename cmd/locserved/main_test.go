package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
)

func makeDB(t *testing.T) string {
	t.Helper()
	scen := sim.PaperHouse()
	env, err := scen.Environment()
	if err != nil {
		t.Fatal(err)
	}
	grid, err := scen.TrainingPoints()
	if err != nil {
		t.Fatal(err)
	}
	coll := sim.NewScanner(env, 5).CaptureCollection(grid, 10)
	db, _, err := trainingdb.Generate(coll, grid, trainingdb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "train.tdb")
	if err := trainingdb.SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestServeEndToEnd(t *testing.T) {
	dbPath := makeDB(t)
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errCh <- run([]string{"-db", dbPath, "-listen", "127.0.0.1:0"}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	if body["locations"].(float64) != 30 {
		t.Errorf("healthz body: %v", body)
	}
	// One live locate through the real TCP stack.
	obsBody := []byte(`{"observation":{"00:02:2d:00:00:0a":-50,"00:02:2d:00:00:0b":-62,"00:02:2d:00:00:0c":-70,"00:02:2d:00:00:0d":-64}}`)
	r2, err := http.Post("http://"+addr+"/locate", "application/json", bytes.NewReader(obsBody))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Fatalf("locate: %d", r2.StatusCode)
	}
}

// TestServeLiveEndToEnd boots locserved with a WAL, trains it over
// HTTP, then boots a second instance on the same journal and checks
// every accepted report survived the "restart".
func TestServeLiveEndToEnd(t *testing.T) {
	dbPath := makeDB(t)
	walPath := filepath.Join(t.TempDir(), "reports.wal")
	start := func() string {
		t.Helper()
		ready := make(chan string, 1)
		errCh := make(chan error, 1)
		var out bytes.Buffer
		go func() {
			errCh <- run([]string{
				"-db", dbPath, "-listen", "127.0.0.1:0",
				"-train-wal", walPath, "-train-flush-count", "1",
			}, &out, ready)
		}()
		select {
		case addr := <-ready:
			return addr
		case err := <-errCh:
			t.Fatalf("server exited early: %v", err)
		case <-time.After(10 * time.Second):
			t.Fatal("server never became ready")
		}
		return ""
	}
	addr := start()
	reports := []string{
		`{"pos":{"x":1,"y":1},"observation":{"00:02:2d:00:00:0a":-50}}`,
		`{"reports":[{"pos":{"x":30,"y":12},"observation":{"00:02:2d:00:00:0b":-60}},{"pos":{"x":4,"y":20},"observation":{"00:02:2d:00:00:0c":-66}}]}`,
	}
	for _, body := range reports {
		resp, err := http.Post("http://"+addr+"/train/report", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("train/report: %d", resp.StatusCode)
		}
	}
	ingestStats := func(addr string) map[string]any {
		t.Helper()
		resp, err := http.Get("http://" + addr + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		ing, ok := body["ingest"].(map[string]any)
		if !ok {
			t.Fatalf("healthz has no ingest section: %v", body)
		}
		return ing
	}
	deadline := time.Now().Add(10 * time.Second)
	for ingestStats(addr)["folded"].(float64) < 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := ingestStats(addr)["folded"].(float64); got != 3 {
		t.Fatalf("folded %v want 3", got)
	}

	// "Restart": a second instance over the same journal must replay
	// every accepted report — zero loss.
	addr2 := start()
	if got := ingestStats(addr2)["replayed"].(float64); got != 3 {
		t.Errorf("replayed %v want 3 after restart", got)
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{}, &out, nil); err == nil {
		t.Error("no -db accepted")
	}
	if err := run([]string{"-db", "/nope"}, &out, nil); err == nil {
		t.Error("missing db accepted")
	}
	dbPath := makeDB(t)
	if err := run([]string{"-db", dbPath, "-algo", "bogus"}, &out, nil); err == nil {
		t.Error("bogus algorithm accepted")
	}
	if err := run([]string{"-db", dbPath, "-algo", "geometric"}, &out, nil); err == nil {
		t.Error("geometric without plan accepted")
	}
	if err := run([]string{"-db", dbPath, "-listen", "256.0.0.1:0"}, &out, nil); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run([]string{"-db", dbPath, "-train-queue", "16"}, &out, nil); err == nil {
		t.Error("-train-queue without -train-wal accepted")
	}
	if err := run([]string{"-db", dbPath, "-train-wal", "w", "-train-flush-count", "-1"}, &out, nil); err == nil {
		t.Error("negative -train-flush-count accepted")
	}
	if err := run([]string{"-db", dbPath, "-max-body", "-1"}, &out, nil); err == nil {
		t.Error("negative -max-body accepted")
	}
	if err := run([]string{"-db", dbPath, "-route-timeout", "-1s"}, &out, nil); err == nil {
		t.Error("negative -route-timeout accepted")
	}
	if err := run([]string{"-db", dbPath, "-access-log", "/no/such/dir/access.log"}, &out, nil); err == nil {
		t.Error("unopenable -access-log path accepted")
	}
}

// TestServeFrontEndFlags boots locserved with the serving-perimeter
// flags live: a tight -max-body must 413 an oversized locate, the
// access log must land on disk, and -metrics=false must withhold the
// exposition endpoint.
func TestServeFrontEndFlags(t *testing.T) {
	dbPath := makeDB(t)
	logPath := filepath.Join(t.TempDir(), "access.log")
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errCh <- run([]string{
			"-db", dbPath, "-listen", "127.0.0.1:0",
			"-max-body", "128", "-route-timeout", "5s",
			"-metrics=false", "-access-log", logPath,
		}, &out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	obsBody := []byte(`{"observation":{"00:02:2d:00:00:0a":-50,"00:02:2d:00:00:0b":-62}}`)
	resp, err := http.Post("http://"+addr+"/locate", "application/json", bytes.NewReader(obsBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("locate within cap: %d", resp.StatusCode)
	}
	big := append([]byte(`{"observation":{"00:02:2d:00:00:0a":-50`), bytes.Repeat([]byte(" "), 200)...)
	resp, err = http.Post("http://"+addr+"/locate", "application/json", bytes.NewReader(append(big, "}}"...)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized locate: %d, want 413", resp.StatusCode)
	}
	resp, err = http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("-metrics=false still serves /metrics: %d", resp.StatusCode)
	}
	// The ring drains on its own cadence; wait for the lines to land.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if b, err := os.ReadFile(logPath); err == nil && bytes.Contains(b, []byte("route=locate")) {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	b, _ := os.ReadFile(logPath)
	t.Errorf("access log never recorded the locate requests; contents:\n%s", b)
}
