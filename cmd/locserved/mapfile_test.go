package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"indoorloc/internal/trainingdb"
)

// makeArtifact compiles the simulated house into a quantized v2
// artifact — the file `tdbtool compile` would produce.
func makeArtifact(t *testing.T) string {
	t.Helper()
	db, err := trainingdb.LoadFile(makeDB(t))
	if err != nil {
		t.Fatal(err)
	}
	c := db.Compile(-95, 4)
	c.Quantize()
	c.ReleaseFloat64()
	path := filepath.Join(t.TempDir(), "map.ilr")
	if err := trainingdb.WriteCompiledFile(path, c); err != nil {
		t.Fatal(err)
	}
	return path
}

func startServer(t *testing.T, args []string) string {
	t.Helper()
	ready := make(chan string, 1)
	errCh := make(chan error, 1)
	var out bytes.Buffer
	go func() {
		errCh <- run(args, &out, ready)
	}()
	select {
	case addr := <-ready:
		return addr
	case err := <-errCh:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	return ""
}

// TestServeFromArtifact boots locserved on a memory-mapped artifact —
// no training database anywhere — and drives the full request surface.
func TestServeFromArtifact(t *testing.T) {
	addr := startServer(t, []string{
		"-map-file", makeArtifact(t), "-listen", "127.0.0.1:0", "-topk", "4",
	})
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if health["locations"].(float64) != 30 || health["aps"].(float64) != 4 {
		t.Errorf("healthz: %v", health)
	}

	resp, err = http.Get("http://" + addr + "/locations")
	if err != nil {
		t.Fatal(err)
	}
	var locs []map[string]any
	json.NewDecoder(resp.Body).Decode(&locs)
	resp.Body.Close()
	if len(locs) != 30 {
		t.Errorf("/locations returned %d entries", len(locs))
	}

	obsBody := []byte(`{"observation":{"00:02:2d:00:00:0a":-50,"00:02:2d:00:00:0b":-62,"00:02:2d:00:00:0c":-70,"00:02:2d:00:00:0d":-64}}`)
	r2, err := http.Post("http://"+addr+"/locate", "application/json", bytes.NewReader(obsBody))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	if r2.StatusCode != 200 {
		t.Fatalf("locate: %d", r2.StatusCode)
	}
	var est map[string]any
	if err := json.NewDecoder(r2.Body).Decode(&est); err != nil {
		t.Fatal(err)
	}
	if est["name"] == "" {
		t.Errorf("estimate has no name: %v", est)
	}
}

// TestTrainArtifactEmission runs live training with -train-artifact
// and checks a valid v2 artifact appears and tracks the swaps.
func TestTrainArtifactEmission(t *testing.T) {
	dbPath := makeDB(t)
	dir := t.TempDir()
	artifact := filepath.Join(dir, "live.ilr")
	addr := startServer(t, []string{
		"-db", dbPath, "-listen", "127.0.0.1:0",
		"-train-wal", filepath.Join(dir, "reports.wal"),
		"-train-flush-count", "1",
		"-train-artifact", artifact,
		"-quantize",
	})
	// The initial snapshot already emits one.
	if _, err := os.Stat(artifact); err != nil {
		t.Fatalf("no artifact after startup: %v", err)
	}
	body := []byte(`{"pos":{"x":1,"y":1},"observation":{"00:02:2d:00:00:0a":-50}}`)
	resp, err := http.Post("http://"+addr+"/train/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("train/report: %d", resp.StatusCode)
	}
	// Wait for the swap to rewrite the artifact at the new generation.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(artifact)
		if err == nil {
			if info, err := trainingdb.ReadFileInfo(data); err == nil && info.Generation > 0 {
				if !info.Quantized {
					t.Error("live artifact is not quantized despite -quantize")
				}
				// And it still fully verifies.
				if _, err := trainingdb.DecodeCompiled(data, trainingdb.DecodeOptions{VerifyCRC: true}); err != nil {
					t.Fatalf("emitted artifact does not verify: %v", err)
				}
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("artifact never updated after a swap")
}

func TestMapFileFlagErrors(t *testing.T) {
	var out bytes.Buffer
	dbPath := makeDB(t)
	artifact := makeArtifact(t)
	if err := run([]string{"-db", dbPath, "-map-file", artifact}, &out, nil); err == nil {
		t.Error("-db together with -map-file accepted")
	}
	if err := run([]string{"-map-file", artifact, "-train-wal", "w"}, &out, nil); err == nil {
		t.Error("-map-file with live training accepted")
	}
	if err := run([]string{"-map-file", artifact, "-algo", "histogram"}, &out, nil); err == nil {
		t.Error("histogram over an artifact accepted")
	}
	if err := run([]string{"-map-file", "/nope"}, &out, nil); err == nil {
		t.Error("missing artifact accepted")
	}
	if err := run([]string{"-db", dbPath, "-topk", "-2"}, &out, nil); err == nil {
		t.Error("negative -topk accepted")
	}
	if err := run([]string{"-db", dbPath, "-train-artifact", "a.ilr"}, &out, nil); err == nil {
		t.Error("-train-artifact without -train-wal accepted")
	}
}
