module indoorloc

go 1.22
