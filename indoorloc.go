// Package indoorloc is a toolkit for building indoor location
// determination systems from 802.11 signal strength, reproducing
// "A Toolkit-Based Approach to Indoor Localization" (Wang & Harder,
// ICPP Workshops 2006).
//
// The toolkit factors indoor localization into the paper's two phases:
//
//   - Training: annotate a floor plan (internal/floorplan), capture
//     wi-scan files at named locations (internal/wiscan,
//     internal/sim), and compile them with a location map into a
//     compressed training database (internal/trainingdb).
//   - Working: average an observation window into a signal vector and
//     resolve it to a location with a pluggable algorithm
//     (internal/localize): the paper's probabilistic Gaussian
//     maximum-likelihood and geometric circle-intersection methods,
//     plus RADAR-style kNN, Bayesian histograms, and tracking filters
//     (internal/filter).
//
// This package is a facade: it re-exports the main types and offers
// one-call helpers for the common paths. Lower-level control lives in
// the internal packages; the command-line tools under cmd/ mirror the
// paper's three utilities (Floor Plan Processor, Floor Plan
// Compositor, Training Database Generator).
package indoorloc

import (
	"fmt"

	"indoorloc/internal/core"
	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/wiscan"
)

// Re-exported core types, so simple consumers import only this
// package.
type (
	// Observation is a BSSID → mean-RSSI vector.
	Observation = localize.Observation
	// Estimate is a localization result.
	Estimate = localize.Estimate
	// Locator is the algorithm interface.
	Locator = localize.Locator
	// Service is a trained location service.
	Service = core.Service
	// Resolution is a located observation with its symbolic name.
	Resolution = core.Resolution
	// Pipeline is the Figure 1 training flow.
	Pipeline = core.Pipeline
	// BuildConfig parameterises BuildLocator.
	BuildConfig = core.BuildConfig
)

// Algorithm names, re-exported from the registry.
const (
	AlgoProbabilistic = core.AlgoProbabilistic
	AlgoHistogram     = core.AlgoHistogram
	AlgoNNSS          = core.AlgoNNSS
	AlgoKNN           = core.AlgoKNN
	AlgoWKNN          = core.AlgoWKNN
	AlgoGeometric     = core.AlgoGeometric
	AlgoGeometricLS   = core.AlgoGeometricLS
	AlgoSector        = core.AlgoSector
	AlgoHybrid        = core.AlgoHybrid
)

// Algorithms lists the registered algorithm names.
func Algorithms() []string { return core.Algorithms() }

// BuildLocator constructs a registered algorithm over a training
// database.
func BuildLocator(name string, db *trainingdb.DB, cfg BuildConfig) (Locator, error) {
	return core.BuildLocator(name, db, cfg)
}

// Train runs Phase 1 from file paths: a wi-scan collection (directory
// or zip) and a location map, fitting the named algorithm (empty for
// the paper's probabilistic method).
func Train(scanPath, locmapPath, algorithm string) (*Service, error) {
	coll, err := wiscan.ReadCollection(scanPath)
	if err != nil {
		return nil, fmt.Errorf("indoorloc: %w", err)
	}
	lm, err := locmap.ReadFile(locmapPath)
	if err != nil {
		return nil, fmt.Errorf("indoorloc: %w", err)
	}
	pl := &Pipeline{Collection: coll, LocMap: lm, Algorithm: algorithm}
	svc, _, err := pl.Train()
	return svc, err
}

// LoadDatabase reads a training database produced by the Training
// Database Generator (cmd/tdbgen or trainingdb.SaveFile).
func LoadDatabase(path string) (*trainingdb.DB, error) {
	return trainingdb.LoadFile(path)
}

// ObservationFromRecords averages a capture window into an
// Observation.
func ObservationFromRecords(recs []wiscan.Record) Observation {
	return localize.ObservationFromRecords(recs)
}
