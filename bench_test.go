// Benchmarks regenerating the performance-relevant paper artefacts.
// Accuracy-shaped experiments (the actual numbers for Figure 4 and the
// §5.1/§5.2 results) are produced by cmd/experiments; the benchmarks
// here measure the cost of each pipeline stage on the same workloads.
// One benchmark exists per experiment in DESIGN.md §4.
package indoorloc_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"indoorloc/internal/compositor"
	"indoorloc/internal/core"
	"indoorloc/internal/filter"
	"indoorloc/internal/floorplan"
	"indoorloc/internal/geom"
	"indoorloc/internal/ingest"
	"indoorloc/internal/localize"
	"indoorloc/internal/locmap"
	"indoorloc/internal/regress"
	"indoorloc/internal/rf"
	"indoorloc/internal/server"
	"indoorloc/internal/sim"
	"indoorloc/internal/trainingdb"
	"indoorloc/internal/uwb"
	"indoorloc/internal/wiscan"
)

// benchFixture builds the paper-house training artefacts once for all
// benchmarks.
type benchFixture struct {
	scen sim.Scenario
	env  *rf.Environment
	lm   *locmap.Map
	coll *wiscan.Collection
	db   *trainingdb.DB
}

var (
	fixOnce sync.Once
	fix     benchFixture
)

func fixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		scen := sim.PaperHouse()
		env, err := scen.Environment()
		if err != nil {
			panic(err)
		}
		lm, err := scen.TrainingPoints()
		if err != nil {
			panic(err)
		}
		coll := sim.NewScanner(env, 1).CaptureCollection(lm, 90) // paper: 1.5 min
		db, _, err := trainingdb.Generate(coll, lm, trainingdb.Options{})
		if err != nil {
			panic(err)
		}
		fix = benchFixture{scen: scen, env: env, lm: lm, coll: coll, db: db}
	})
	return &fix
}

// observations draws n averaged test observations over the 13 paper
// test points, cycling.
func observations(f *benchFixture, n int, seed int64) []localize.Observation {
	sc := sim.NewScanner(f.env, seed)
	out := make([]localize.Observation, n)
	for i := range out {
		p := f.scen.TestPoints[i%len(f.scen.TestPoints)]
		out[i] = localize.ObservationFromRecords(sc.Capture(p, 10, 0))
	}
	return out
}

// BenchmarkFloorPlanProcessor is experiment Fig. 2: a full Floor Plan
// Processor session — blueprint, APs, scale, origin, 30 location
// names, save.
func BenchmarkFloorPlanProcessor(b *testing.B) {
	f := fixture(b)
	for i := 0; i < b.N; i++ {
		plan, err := compositor.Blueprint("experiment house", compositor.BlueprintSpec{
			Outline: f.scen.Outline,
			Walls:   f.scen.Walls,
		})
		if err != nil {
			b.Fatal(err)
		}
		for j, ap := range f.scen.APs {
			px, err := plan.ToPixel(ap.Pos)
			if err != nil {
				b.Fatal(err)
			}
			plan.AddAP(fmt.Sprintf("%c", 'A'+j), px)
		}
		for _, name := range f.lm.Names() {
			w, _ := f.lm.Lookup(name)
			px, _ := plan.ToPixel(w)
			if err := plan.AddLocation(name, px); err != nil {
				b.Fatal(err)
			}
		}
		var buf bytes.Buffer
		if err := plan.Save(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompositorRender is experiment Fig. 3: rendering the floor
// plan with the 13 test locations and their estimates marked.
func BenchmarkCompositorRender(b *testing.B) {
	f := fixture(b)
	plan, err := compositor.Blueprint("experiment house", compositor.BlueprintSpec{
		Outline: f.scen.Outline,
		Walls:   f.scen.Walls,
	})
	if err != nil {
		b.Fatal(err)
	}
	for j, ap := range f.scen.APs {
		px, _ := plan.ToPixel(ap.Pos)
		plan.AddAP(fmt.Sprintf("%c", 'A'+j), px)
	}
	vectors := make([]compositor.ErrorVector, len(f.scen.TestPoints))
	for i, p := range f.scen.TestPoints {
		vectors[i] = compositor.ErrorVector{
			Actual:    p,
			Estimated: p.Add(geom.Pt(3, -2)),
		}
	}
	opts := compositor.RenderOptions{DrawAPs: true, DrawWalls: true, Labels: true, Vectors: vectors}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compositor.Render(plan, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4RegressionFit is experiment Fig. 4: fitting the
// inverse-square signal↔distance model for one AP from its training
// samples.
func BenchmarkFig4RegressionFit(b *testing.B) {
	f := fixture(b)
	bssid := f.db.BSSIDs[0]
	apPos := f.scen.APPositions()[bssid]
	dists, rssis := f.db.DistanceSamples(bssid, apPos)
	basis := regress.InversePowerBasis{Degree: 2, MinDist: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := regress.Fit(basis, dists, rssis); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProbabilisticLocalize is experiment R5.1: one Gaussian
// maximum-likelihood localization over the 30-point training grid.
func BenchmarkProbabilisticLocalize(b *testing.B) {
	f := fixture(b)
	ml := localize.NewMaxLikelihood(f.db)
	obs := observations(f, 64, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.Locate(obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHistogramLocalize measures the distribution-aware variant
// (future work §6.2) on the same workload as R5.1.
func BenchmarkHistogramLocalize(b *testing.B) {
	f := fixture(b)
	h := localize.NewHistogram(f.db)
	obs := observations(f, 64, 3)
	if _, err := h.Locate(obs[0]); err != nil { // build caches
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Locate(obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeometricLocalize is experiment R5.2: model inversion,
// pairwise circle intersection and the median point for one
// observation.
func BenchmarkGeometricLocalize(b *testing.B) {
	f := fixture(b)
	g, err := localize.FitGeometric(f.db, f.scen.APPositions(),
		regress.InversePowerBasis{Degree: 2, MinDist: 1})
	if err != nil {
		b.Fatal(err)
	}
	obs := observations(f, 64, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.Locate(obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKNNSweep is experiment A1: kNN localization cost across k.
func BenchmarkKNNSweep(b *testing.B) {
	f := fixture(b)
	obs := observations(f, 64, 5)
	for _, k := range []int{1, 2, 3, 4, 5, 6} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			knn := localize.NewKNN(f.db, k)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := knn.Locate(obs[i%len(obs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainingDBGenerate measures the Training Database Generator
// on the paper-house collection (30 locations × 90 sweeps × 4 APs).
func BenchmarkTrainingDBGenerate(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := trainingdb.Generate(f.coll, f.lm, trainingdb.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrainingDBSaveLoad measures the compressed database round
// trip — the paper's stated reason for the format ("loaded into memory
// more quickly than reading multiple wi-scan files line by line").
func BenchmarkTrainingDBSaveLoad(b *testing.B) {
	f := fixture(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := trainingdb.Save(&buf, f.db); err != nil {
			b.Fatal(err)
		}
		if _, err := trainingdb.Load(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWiScanParse measures raw wi-scan parsing, the path the
// training database exists to avoid.
func BenchmarkWiScanParse(b *testing.B) {
	f := fixture(b)
	name := f.lm.SortedNames()[0]
	var buf bytes.Buffer
	if err := wiscan.Write(&buf, f.coll.Files[name]); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wiscan.Read(bytes.NewReader(raw), name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScannerCapture measures drawing one 90-sweep training
// capture from the RF simulator.
func BenchmarkScannerCapture(b *testing.B) {
	f := fixture(b)
	sc := sim.NewScanner(f.env, 9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if recs := sc.Capture(geom.Pt(25, 20), 90, 0); len(recs) == 0 {
			b.Fatal("empty capture")
		}
	}
}

// BenchmarkKalmanTracking is experiment A5: filtering a 100-step walk.
func BenchmarkKalmanTracking(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	path := make([]geom.Point, 100)
	for i := range path {
		path[i] = geom.Pt(float64(i)*0.5+rng.NormFloat64()*4, 20+rng.NormFloat64()*4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := &filter.Kalman{Dt: 1, ProcessNoise: 0.5, MeasurementNoise: 5}
		for _, p := range path {
			k.Update(p)
		}
	}
}

// BenchmarkParticleTracking is experiment A5's heavyweight variant.
func BenchmarkParticleTracking(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	path := make([]geom.Point, 100)
	for i := range path {
		path[i] = geom.Pt(float64(i)*0.5+rng.NormFloat64()*4, 20+rng.NormFloat64()*4)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf := &filter.Particle{N: 500, Rng: rand.New(rand.NewSource(8))}
		for _, p := range path {
			pf.Update(p)
		}
	}
}

// BenchmarkUWBRanging is experiment A6: one UWB positioning fix
// (4 ranging exchanges + multilateration).
func BenchmarkUWBRanging(b *testing.B) {
	sys, err := uwb.NewSystem([]uwb.Anchor{
		{ID: "u0", Pos: geom.Pt(0, 0)},
		{ID: "u1", Pos: geom.Pt(50, 0)},
		{ID: "u2", Pos: geom.Pt(50, 40)},
		{ID: "u3", Pos: geom.Pt(0, 40)},
	}, nil, uwb.Channel{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := sys.Locate(geom.Pt(25, 20), rng); !ok {
			b.Fatal("locate failed")
		}
	}
}

// BenchmarkPipelineTrain is experiment Fig. 1: the full Phase 1 flow,
// collection to fitted service.
func BenchmarkPipelineTrain(b *testing.B) {
	f := fixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pl := &core.Pipeline{
			Collection:  f.coll,
			LocMap:      f.lm,
			Algorithm:   core.AlgoProbabilistic,
			APPositions: f.scen.APPositions(),
		}
		if _, _, err := pl.Train(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanGIFRoundTrip measures the annotated-plan save format
// including the embedded GIF.
func BenchmarkPlanGIFRoundTrip(b *testing.B) {
	f := fixture(b)
	plan, err := compositor.Blueprint("experiment house", compositor.BlueprintSpec{
		Outline: f.scen.Outline,
		Walls:   f.scen.Walls,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := plan.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := floorplan.Load(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBatchLocalize measures the concurrent working-phase fanout
// at several pool sizes on 256 observations.
func BenchmarkBatchLocalize(b *testing.B) {
	f := fixture(b)
	ml := localize.NewMaxLikelihood(f.db)
	obs := observations(f, 256, 10)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := localize.Batch(ml, obs, workers)
				for j := range res {
					if res[j].Err != nil {
						b.Fatal(res[j].Err)
					}
				}
			}
		})
	}
}

// BenchmarkSectorLocalize measures the identifying-code baseline.
func BenchmarkSectorLocalize(b *testing.B) {
	f := fixture(b)
	sec := localize.NewSector(f.db)
	obs := observations(f, 64, 11)
	if _, err := sec.Locate(obs[0]); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sec.Locate(obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeatmapRender measures the radio-map renderer on the
// paper-house blueprint at 1-ft cells.
func BenchmarkHeatmapRender(b *testing.B) {
	f := fixture(b)
	plan, err := compositor.Blueprint("house", compositor.BlueprintSpec{
		Outline: f.scen.Outline, Walls: f.scen.Walls,
	})
	if err != nil {
		b.Fatal(err)
	}
	apPos := f.scen.APs[0].Pos
	model := rf.DefaultLogDistance()
	hm := compositor.Heatmap{
		Field: func(p geom.Point) float64 {
			return float64(model.MeanRSSI(-30, apPos.Dist(p), 0))
		},
		Lo: -95, Hi: -40, CellFeet: 1, Area: f.scen.Outline,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compositor.RenderHeatmap(plan, hm); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServerLocate measures one /locate round trip through the
// full HTTP stack (httptest, loopback only).
func BenchmarkServerLocate(b *testing.B) {
	f := fixture(b)
	loc := localize.NewMaxLikelihood(f.db)
	svc := &core.Service{DB: f.db, Locator: loc, Names: f.lm}
	srv, err := server.New(svc, nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	obs := observations(f, 1, 12)[0]
	payload, err := json.Marshal(map[string]any{"observation": obs})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/locate", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkProbabilisticLargeMap measures the working phase on the
// 117-point, 8-AP office wing — the scaling story beyond the paper's
// 30-point house.
func BenchmarkProbabilisticLargeMap(b *testing.B) {
	scen := sim.OfficeWing()
	env, err := scen.Environment()
	if err != nil {
		b.Fatal(err)
	}
	lm, err := scen.TrainingPoints()
	if err != nil {
		b.Fatal(err)
	}
	coll := sim.NewScanner(env, 2).CaptureCollection(lm, 30)
	db, _, err := trainingdb.Generate(coll, lm, trainingdb.Options{})
	if err != nil {
		b.Fatal(err)
	}
	ml := localize.NewMaxLikelihood(db)
	sc := sim.NewScanner(env, 3)
	obs := make([]localize.Observation, 32)
	for i := range obs {
		obs[i] = localize.ObservationFromRecords(
			sc.Capture(scen.TestPoints[i%len(scen.TestPoints)], 10, 0))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ml.Locate(obs[i%len(obs)]); err != nil {
			b.Fatal(err)
		}
	}
}

// syntheticLargeDB fabricates a campus-scale radio map — far past the
// paper's 30-point house — directly from statistics, so the benchmark
// measures scoring, not simulation. Each entry hears a contiguous
// window of APs, giving the overlap structure of a real corridor
// survey.
func syntheticLargeDB(entries, aps, heardPerEntry int, seed int64) *trainingdb.DB {
	rng := rand.New(rand.NewSource(seed))
	db := &trainingdb.DB{Entries: make(map[string]*trainingdb.Entry, entries)}
	db.BSSIDs = make([]string, aps)
	for a := range db.BSSIDs {
		db.BSSIDs[a] = fmt.Sprintf("ca:fe:00:00:%02x:%02x", a/256, a%256)
	}
	cols := (entries + 39) / 40
	for e := 0; e < entries; e++ {
		name := fmt.Sprintf("pt-%04d", e)
		ent := &trainingdb.Entry{
			Name:  name,
			Pos:   geom.Pt(float64(e%cols)*5, float64(e/cols)*5),
			PerAP: make(map[string]*trainingdb.APStats, heardPerEntry),
		}
		first := (e * 7) % (aps - heardPerEntry + 1)
		for a := first; a < first+heardPerEntry; a++ {
			ent.PerAP[db.BSSIDs[a]] = &trainingdb.APStats{
				BSSID:  db.BSSIDs[a],
				N:      20,
				Mean:   -45 - rng.Float64()*40,
				StdDev: 2 + rng.Float64()*4,
			}
		}
		db.Entries[name] = ent
	}
	return db
}

// syntheticObservations draws observations compatible with
// syntheticLargeDB: signal vectors near a random entry's means.
func syntheticObservations(db *trainingdb.DB, n int, seed int64) []localize.Observation {
	rng := rand.New(rand.NewSource(seed))
	names := db.Names()
	out := make([]localize.Observation, n)
	for i := range out {
		ent := db.Entries[names[rng.Intn(len(names))]]
		obs := make(localize.Observation, len(ent.PerAP))
		for bssid, st := range ent.PerAP {
			obs[bssid] = st.Mean + rng.NormFloat64()*st.StdDev
		}
		out[i] = obs
	}
	return out
}

// BenchmarkShardedLargeMap is experiment A7: one maximum-likelihood
// query over a 3000-entry, 64-AP synthetic campus map, single-threaded
// versus sharded across the worker pool. The sharded case forces
// Cutover=1 so the comparison isolates the fan-out itself; speedup
// tracks available cores (GOMAXPROCS), so run it with ≥4 CPUs to see
// the serving-scale effect.
func BenchmarkShardedLargeMap(b *testing.B) {
	db := syntheticLargeDB(3000, 64, 16, 20)
	obs := syntheticObservations(db, 32, 21)
	cases := []struct {
		name     string
		sharding *localize.ShardedScorer
	}{
		{"single", &localize.ShardedScorer{Shards: 1}},
		{"sharded", &localize.ShardedScorer{Cutover: 1}}, // Shards=0: one per CPU
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			ml := localize.NewMaxLikelihood(db)
			ml.Sharding = c.sharding
			if _, err := ml.Locate(obs[0]); err != nil { // compile the map
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ml.Locate(obs[i%len(obs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkServerLocateBatch is experiment A8: 64 observations through
// the serving pipeline, as one /locate/batch request against 64
// repeated /locate round trips. Per-observation cost and allocations
// are what the arena + streaming fan-out exist to shrink; divide ns/op
// and allocs/op by 64 to compare per observation.
func BenchmarkServerLocateBatch(b *testing.B) {
	f := fixture(b)
	loc := localize.NewMaxLikelihood(f.db)
	svc := &core.Service{DB: f.db, Locator: loc, Names: f.lm}
	srv, err := server.New(svc, nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const batch = 64
	obs := observations(f, batch, 13)
	batchPayload, err := json.Marshal(map[string]any{"observations": obs})
	if err != nil {
		b.Fatal(err)
	}
	singles := make([][]byte, batch)
	for i, o := range obs {
		if singles[i], err = json.Marshal(map[string]any{"observation": o}); err != nil {
			b.Fatal(err)
		}
	}
	post := func(b *testing.B, url string, payload []byte) {
		resp, err := http.Post(url, "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.Run("batch=64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			post(b, ts.URL+"/locate/batch", batchPayload)
		}
	})
	b.Run("repeated-single=64", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, payload := range singles {
				post(b, ts.URL+"/locate", payload)
			}
		}
	})
}

// campusFixture builds the 100k-entry, 64-AP synthetic campus once for
// the map-v2 benchmarks: the float64 compiled view and its quantized
// mirror (float64 matrices released), both from the same database.
type campusFixture struct {
	db    *trainingdb.DB
	f64   *trainingdb.Compiled
	quant *trainingdb.Compiled
	obs   []localize.Observation
}

var (
	campusOnce sync.Once
	campus     campusFixture
)

// mapV2CampusEntries sizes the map-v2 fixture. The default is the
// 100k-entry campus the DESIGN.md numbers quote; the bench-smoke CI
// lane overrides it via -mapv2-entries to keep the lane fast.
var mapV2CampusEntries = flag.Int("mapv2-entries", 100_000, "entries in the BenchmarkMapV2 campus fixture")

func campusBench(b *testing.B) *campusFixture {
	b.Helper()
	campusOnce.Do(func() {
		db := syntheticLargeDB(*mapV2CampusEntries, 64, 16, 30)
		f64 := db.Compile(-95, 4)
		quant := db.Compile(-95, 4)
		quant.Quantize()
		quant.ReleaseFloat64()
		campus = campusFixture{
			db:    db,
			f64:   f64,
			quant: quant,
			obs:   syntheticObservations(db, 32, 31),
		}
	})
	return &campus
}

// BenchmarkMapV2Campus100k is experiment A10: one maximum-likelihood
// query over the campus map in the three serving configurations the
// compiled-map-v2 work introduces. float64-fullsort is the v1
// baseline; quantized-fullsort isolates the int16 matrices (¼ the
// bytes scanned, so the memory-bound scan speeds up); quantized-topk8
// adds bounded ranking (no 100k-candidate sort). matrix-MB reports the
// resident matrix footprint each configuration scans.
func BenchmarkMapV2Campus100k(b *testing.B) {
	f := campusBench(b)
	cases := []struct {
		name string
		view *trainingdb.Compiled
		topk int
	}{
		{"float64-fullsort", f.f64, 0},
		{"quantized-fullsort", f.quant, 0},
		{"quantized-topk8", f.quant, 8},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			ml := localize.NewMaxLikelihood(nil)
			ml.Precompiled = c.view
			ml.TopK = c.topk
			ml.Sharding = &localize.ShardedScorer{Shards: 1} // isolate per-cell cost from fan-out
			if _, err := ml.Locate(f.obs[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ml.Locate(f.obs[i%len(f.obs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(c.view.MatrixBytes())/(1<<20), "matrix-MB")
		})
	}
}

// BenchmarkMapV2KNN runs the same three-way comparison for the kNN
// scorer, whose scan is pure signal distance (no log-likelihood).
func BenchmarkMapV2KNN(b *testing.B) {
	f := campusBench(b)
	cases := []struct {
		name string
		view *trainingdb.Compiled
		topk int
	}{
		{"float64-fullsort", f.f64, 0},
		{"quantized-topk8", f.quant, 8},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			knn := localize.NewKNN(nil, 3)
			knn.Precompiled = c.view
			knn.TopK = c.topk
			knn.Sharding = &localize.ShardedScorer{Shards: 1}
			if _, err := knn.Locate(f.obs[0]); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := knn.Locate(f.obs[i%len(f.obs)]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// liveRebuilder is the ingest benchmarks' Rebuilder: the same
// probabilistic-locator-plus-regenerated-name-map recipe locserved
// uses, so rebuild cost in the numbers matches production.
func liveRebuilder(db *trainingdb.DB) (*core.Service, error) {
	loc, err := core.BuildLocator(core.AlgoProbabilistic, db, core.BuildConfig{})
	if err != nil {
		return nil, err
	}
	names := locmap.New()
	for _, name := range db.Names() {
		if err := names.Add(name, db.Entries[name].Pos); err != nil {
			return nil, err
		}
	}
	return &core.Service{DB: db, Locator: loc, Names: names}, nil
}

// BenchmarkIngestReport is experiment A9a: the accept path of one
// training report — admission, WAL journal, queue hand-off — with the
// compactor folding concurrently. The fsync variant prices the
// stronger power-loss durability.
func BenchmarkIngestReport(b *testing.B) {
	f := fixture(b)
	report := ingest.Report{
		Pos: &ingest.ReportPos{X: 10, Y: 10},
		Observation: map[string]float64{
			"00:02:2d:00:00:0a": -52, "00:02:2d:00:00:0b": -60,
			"00:02:2d:00:00:0c": -68, "00:02:2d:00:00:0d": -71,
		},
	}
	for _, sync := range []bool{false, true} {
		name := "buffered"
		if sync {
			name = "fsync"
		}
		b.Run(name, func(b *testing.B) {
			mgr, err := ingest.NewManager(f.db.Snapshot(), liveRebuilder, ingest.Config{
				WALPath:         filepath.Join(b.TempDir(), "bench.wal"),
				SyncEveryAppend: sync,
				QueueDepth:      8192,
				FlushReports:    1 << 30, // submit cost only; swaps are priced separately
				FlushInterval:   time.Hour,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer mgr.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for {
					err := mgr.Submit(report)
					if err == nil {
						break
					}
					if !errors.Is(err, ingest.ErrQueueFull) {
						b.Fatal(err)
					}
					runtime.Gosched() // let the compactor drain
				}
			}
		})
	}
}

// BenchmarkSnapshotSwap is experiment A9b: the full hot-swap — freeze
// the master database, rebuild the locator and name map, publish
// through the registry — at the paper-house scale and at campus scale.
// This is the cost the compactor pays off the serving path; readers
// pay one atomic pointer load regardless.
func BenchmarkSnapshotSwap(b *testing.B) {
	cases := []struct {
		name string
		db   *trainingdb.DB
	}{
		{"house-30pt", fixture(b).db.Snapshot()},
		{"campus-3000pt", syntheticLargeDB(3000, 64, 16, 22)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			svc, err := liveRebuilder(c.db.Snapshot())
			if err != nil {
				b.Fatal(err)
			}
			reg, err := core.StaticSnapshot(svc)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				frozen := c.db.Snapshot()
				svc, err := liveRebuilder(frozen)
				if err != nil {
					b.Fatal(err)
				}
				reg.Publish(&core.Snapshot{
					Generation: frozen.Generation(),
					Service:    svc,
					BuiltAt:    time.Now(),
				})
			}
		})
	}
}

// BenchmarkServerLocateUnderIngest is experiment A9c: the batch=64
// serving round trip while a writer streams training reports and the
// compactor swaps snapshots every 32 folds. Compare against
// BenchmarkServerLocateBatch/batch=64 — the gap is the price readers
// pay for live training (it should be near zero: swaps cost readers
// one pointer load).
func BenchmarkServerLocateUnderIngest(b *testing.B) {
	f := fixture(b)
	mgr, err := ingest.NewManager(f.db.Snapshot(), liveRebuilder, ingest.Config{
		WALPath:       filepath.Join(b.TempDir(), "bench.wal"),
		QueueDepth:    8192,
		FlushReports:  32,
		FlushInterval: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer mgr.Close()
	srv, err := server.NewLive(mgr, nil)
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	const batch = 64
	payload, err := json.Marshal(map[string]any{"observations": observations(f, batch, 13)})
	if err != nil {
		b.Fatal(err)
	}
	report := ingest.Report{
		Pos:         &ingest.ReportPos{X: 12, Y: 8},
		Observation: map[string]float64{"00:02:2d:00:00:0a": -55, "00:02:2d:00:00:0b": -63},
	}
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		// ~1000 reports/s — a heavy but plausible crowdsourcing load.
		// An unthrottled writer would just measure CPU contention.
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				mgr.Submit(report)
			}
		}
	}()
	defer func() { close(stop); writer.Wait() }()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/locate/batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.StopTimer()
	// Calibration runs (N=1) are too short for the 1 ms cadence to fire;
	// only a real window with zero swaps means the bench measured nothing.
	if b.N >= 100 && mgr.Stats().Swaps == 0 {
		b.Log("warning: no swaps happened during the bench window")
	}
}
